"""The deterministic feature-hash/linear throughput surrogate.

A closed-form ridge regression over the static block featurisation
(:func:`repro.models.features.block_features`) concatenated with a
CRC-hashed mnemonic bag — cheap enough to evaluate per block at triage
time, expressive enough to near-interpolate the measured corpus it was
trained on.  The model regresses the *residual* against the static
throughput bound already present in the feature vector, so an
untrained or underdetermined surrogate degrades toward the static
bound instead of toward zero.

Everything here is deterministic and ``PYTHONHASHSEED``-stable:

* feature hashing uses ``zlib.crc32``, never builtin ``hash()``;
* training rows are sorted by block digest before fitting, so the fit
  is order-blind (``tests/triage`` pins both properties);
* the fit is a closed-form dual-ridge solve (no SGD, no RNG), so the
  same rows always produce the same weights.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.isa.instruction import BasicBlock
from repro.models.features import FEATURE_DIM, block_features

SURROGATE_VERSION = 1

#: Hashed token-bag width (decorated unigrams + bigrams share the
#: buckets).  Sized so typical warm-cache corpora stay in the
#: interpolation regime (rows < features), where the dual-ridge fit
#: predicts every journaled block back near-exactly.
HASH_BUCKETS = 512

#: Index of the static throughput bound inside the dense feature
#: vector (``block_features`` appends ``[bound, log(bound)]`` last).
_BOUND_INDEX = FEATURE_DIM - 2

#: Ridge strength relative to the kernel's mean diagonal — small
#: enough to near-interpolate the training rows (the whole point of
#: triage: revisited blocks must predict within tolerance), large
#: enough to keep the solve numerically sane.
_RIDGE = 1e-6


def featurize(block: BasicBlock) -> Optional[np.ndarray]:
    """Dense features + hashed mnemonic bag, or ``None`` on failure.

    A block the featuriser cannot handle (pathological operands, an
    unsupported timing class) simply falls through to full simulation
    — featurisation failures cost speed, never correctness.
    """
    try:
        dense = block_features(block)
        bag = np.zeros(HASH_BUCKETS, dtype=np.float64)

        def bump(token: str) -> None:
            bag[zlib.crc32(token.encode()) % HASH_BUCKETS] += 1.0

        prev = None
        for instr in block:
            shapes = "".join(type(op).__name__[0]
                             for op in instr.operands)
            token = f"{instr.mnemonic}/{shapes}"
            bump(instr.mnemonic)
            bump(token)
            if prev is not None:
                bump(f"{prev}>{token}")
            prev = token
        return np.concatenate([dense, bag])
    except Exception:
        return None


def census_of(rows: Sequence[Tuple[str, float]]) -> str:
    """Content digest of a training set: (digest, throughput) pairs.

    Used to make weight publication idempotent — retraining is skipped
    when the journal holds exactly the rows the current artifact was
    fitted on.  CRC-32 over the sorted pairs, ``PYTHONHASHSEED``-proof
    and order-blind by construction.
    """
    crc = 0
    for digest, throughput in sorted(rows):
        line = f"{digest}={json.dumps(throughput)}"
        crc = zlib.crc32(line.encode(), crc)
    return f"{crc:08x}"


@dataclass
class Surrogate:
    """Fitted triage model: standardizer + residual ridge weights."""

    mean: np.ndarray
    std: np.ndarray
    weights: np.ndarray
    intercept: float
    #: :func:`census_of` the rows this model was fitted on.
    census: str
    rows: int

    def predict(self, phi: np.ndarray) -> float:
        """Predicted throughput for one feature vector."""
        prior = phi[_BOUND_INDEX]
        standardized = (phi - self.mean) / self.std
        return float(prior + self.intercept
                     + standardized @ self.weights)

    # -- serialization (exact float round-trip via JSON repr) ----------

    def to_doc(self) -> dict:
        return {
            "version": SURROGATE_VERSION,
            "dense_dim": FEATURE_DIM,
            "buckets": HASH_BUCKETS,
            "mean": self.mean.tolist(),
            "std": self.std.tolist(),
            "weights": self.weights.tolist(),
            "intercept": self.intercept,
            "census": self.census,
            "rows": self.rows,
        }

    @staticmethod
    def from_doc(doc: dict) -> Optional["Surrogate"]:
        """Rebuild from a document; ``None`` if shape-incompatible.

        A weights artifact written by a build with different feature
        dimensions is useless (every prediction would be garbage), so
        it is rejected and triage falls back to full simulation until
        the next publication retrains.
        """
        try:
            if doc.get("version") != SURROGATE_VERSION \
                    or doc.get("dense_dim") != FEATURE_DIM \
                    or doc.get("buckets") != HASH_BUCKETS:
                return None
            dim = FEATURE_DIM + HASH_BUCKETS
            mean = np.asarray(doc["mean"], dtype=np.float64)
            std = np.asarray(doc["std"], dtype=np.float64)
            weights = np.asarray(doc["weights"], dtype=np.float64)
            if mean.shape != (dim,) or std.shape != (dim,) \
                    or weights.shape != (dim,):
                return None
            return Surrogate(mean=mean, std=std, weights=weights,
                             intercept=float(doc["intercept"]),
                             census=str(doc["census"]),
                             rows=int(doc["rows"]))
        except (KeyError, TypeError, ValueError):
            return None


def fit(features: np.ndarray, throughputs: np.ndarray,
        census: str) -> Surrogate:
    """Closed-form dual-ridge fit of the residual against the bound.

    With more features than training rows (the usual regime — a few
    hundred features, tens of journaled blocks) the dual form
    ``(K + λnI)α = r`` near-interpolates: every training block
    predicts back its own measured throughput to within the ridge
    term, which is what makes the ≤5% fall-through budget on a warm
    re-profile achievable.
    """
    x = np.asarray(features, dtype=np.float64)
    y = np.asarray(throughputs, dtype=np.float64)
    n = len(y)
    prior = x[:, _BOUND_INDEX]
    residual = y - prior
    intercept = float(residual.mean()) if n else 0.0
    centered = residual - intercept

    mean = x.mean(axis=0)
    std = x.std(axis=0)
    std[std < 1e-9] = 1.0
    xs = (x - mean) / std

    kernel = xs @ xs.T
    lam = _RIDGE * (float(np.trace(kernel)) / max(n, 1) + 1.0)
    try:
        alpha = np.linalg.solve(kernel + lam * n * np.eye(n), centered)
    except np.linalg.LinAlgError:
        alpha, *_ = np.linalg.lstsq(kernel + lam * n * np.eye(n),
                                    centered, rcond=None)
    weights = xs.T @ alpha
    return Surrogate(mean=mean, std=std, weights=weights,
                     intercept=intercept, census=census, rows=n)


def fit_rows(rows: Sequence[Tuple[str, BasicBlock, float]]
             ) -> Optional[Surrogate]:
    """Fit from (digest, block, throughput) rows; order-blind.

    Rows are sorted by digest before fitting and rows whose block
    cannot be featurised are dropped (they will always fall through to
    full simulation anyway).  Returns ``None`` when nothing usable
    remains.
    """
    usable: List[Tuple[str, np.ndarray, float]] = []
    pairs: List[Tuple[str, float]] = []
    for digest, block, throughput in sorted(rows, key=lambda r: r[0]):
        phi = featurize(block)
        pairs.append((digest, throughput))
        if phi is not None:
            usable.append((digest, phi, throughput))
    if not usable:
        return None
    features = np.stack([phi for _, phi, _ in usable])
    targets = np.array([t for _, _, t in usable])
    return fit(features, targets, census_of(pairs))
