"""Micro-architectural ground truth: the simulated CPU.

:class:`Machine` is the stand-in for the paper's physical test boxes.
The profiler drives it through the same narrow interface hardware
offers — run code, read performance counters.
"""

from repro.uarch.counters import CounterSample
from repro.uarch.descriptor import CacheGeometry, UarchDescriptor
from repro.uarch.machine import Machine, NoiseParameters, RunResult
from repro.uarch.scheduler import (DataflowScheduler, InstrAnnotation,
                                   ScheduleResult, UopRecord)
from repro.uarch.tables import MICROARCHITECTURES, get_uarch
from repro.uarch.uops import Decomposer, Uop, timing_class

__all__ = [
    "Machine", "NoiseParameters", "RunResult", "CounterSample",
    "UarchDescriptor", "CacheGeometry", "DataflowScheduler",
    "InstrAnnotation", "ScheduleResult", "UopRecord",
    "Decomposer", "Uop", "timing_class",
    "MICROARCHITECTURES", "get_uarch",
]
