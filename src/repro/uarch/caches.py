"""Set-associative LRU cache model.

Used twice per measurement: for the L1 data cache (driven by the
functional trace's *physical* addresses — which is why mapping every
virtual page to one physical page guarantees hits on the VIPT L1) and
for the L1 instruction cache (driven by the unrolled code footprint —
the effect that breaks naive unrolling for large blocks).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from repro.uarch.descriptor import CacheGeometry


class CacheModel:
    """LRU set-associative cache over line addresses."""

    def __init__(self, geometry: CacheGeometry):
        self.geometry = geometry
        self._shift = geometry.line_size.bit_length() - 1
        self._sets: List[OrderedDict] = [OrderedDict()
                                         for _ in range(geometry.sets)]
        self._nsets = geometry.sets
        self._ways = geometry.ways
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        for s in self._sets:
            s.clear()
        self.reset_counters()

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0

    def line_of(self, address: int) -> int:
        return address >> self._shift

    def access(self, address: int) -> bool:
        """Touch one line; returns True on hit."""
        line = address >> self._shift
        lines = self._sets[line % self._nsets]
        if line in lines:
            lines.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        lines[line] = True
        if len(lines) > self._ways:
            lines.popitem(last=False)
        return False

    def access_range(self, address: int, width: int) -> int:
        """Touch every line spanned by [address, address+width).

        Returns the number of misses incurred.
        """
        shift = self._shift
        first = address >> shift
        last = (address + width - 1) >> shift if width > 1 else first
        if last == first:  # within one line: the common case
            return 0 if self.access(address) else 1
        misses = 0
        for line in range(first, last + 1):
            if not self.access(line << shift):
                misses += 1
        return misses
