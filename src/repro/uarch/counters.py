"""Hardware performance counters (simulated).

These mirror the counters the paper's harness programs: the core cycle
counter (invariant to frequency scaling, unlike TSC), the four
"invariant enforcement" counters of §III-C, and the
``MISALIGNED_MEM_REFERENCE`` counter used by the unaligned-access
filter.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CounterSample:
    """One timed run's counter deltas (end - begin reads)."""

    cycles: int
    l1d_read_misses: int = 0
    l1d_write_misses: int = 0
    l1i_misses: int = 0
    context_switches: int = 0
    misaligned_mem_refs: int = 0

    @property
    def is_clean(self) -> bool:
        """Does this run satisfy the paper's modeling invariants?

        A measurement is rejected if any L1 miss or context switch
        occurred (§III-C).  Misaligned references are filtered at block
        granularity rather than per run.
        """
        return (self.l1d_read_misses == 0
                and self.l1d_write_misses == 0
                and self.l1i_misses == 0
                and self.context_switches == 0)

    def with_noise(self, extra_cycles: int,
                   context_switches: int = 0) -> "CounterSample":
        return CounterSample(
            cycles=self.cycles + extra_cycles,
            l1d_read_misses=self.l1d_read_misses,
            l1d_write_misses=self.l1d_write_misses,
            l1i_misses=self.l1i_misses,
            context_switches=self.context_switches + context_switches,
            misaligned_mem_refs=self.misaligned_mem_refs,
        )
