"""Micro-architecture descriptors.

A :class:`UarchDescriptor` bundles everything that differs between Ivy
Bridge, Haswell and Skylake in our model: execution ports, issue width,
cache geometry, memory latencies and the feature set (AVX2/FMA).  The
ground-truth machine, the classifier's port mapping and the cost models
all consume the same descriptor, parameterised by their own tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class CacheGeometry:
    """One cache level's shape (sizes in bytes)."""

    size: int
    line_size: int
    ways: int

    @property
    def sets(self) -> int:
        return self.size // (self.line_size * self.ways)


@dataclass(frozen=True)
class UarchDescriptor:
    """Static description of a modelled microarchitecture."""

    name: str
    #: Execution ports, e.g. ``(0, 1, 2, 3, 4, 5, 6, 7)`` on Haswell.
    ports: Tuple[int, ...]
    #: Rename/allocate width (fused-domain micro-ops per cycle).
    issue_width: int
    #: Ports able to execute load micro-ops.
    load_ports: Tuple[int, ...]
    #: Ports able to compute store addresses.
    store_addr_ports: Tuple[int, ...]
    #: Port(s) accepting store-data micro-ops.
    store_data_ports: Tuple[int, ...]
    l1d: CacheGeometry = CacheGeometry(32 * 1024, 64, 8)
    l1i: CacheGeometry = CacheGeometry(32 * 1024, 64, 8)
    #: L1 load-to-use latency for simple addressing; +1 when indexed.
    load_latency: int = 4
    indexed_load_extra: int = 1
    #: Store-to-load forwarding latency.
    store_forward_latency: int = 5
    #: Extra cycles for an L1 miss (L2 hit).
    l1_miss_penalty: int = 11
    #: Extra cycles when a load/store splits a cache line.
    split_line_penalty: int = 4
    #: Cycles of microcode assist on a subnormal FP event.
    subnormal_penalty: int = 124
    #: Cycles per L1I miss charged to the front end.
    l1i_miss_penalty: int = 9
    #: Register move elimination at rename (Ivy Bridge introduced it
    #: for GPRs; ours models it from Haswell on for both files).
    move_elimination: bool = True
    #: ISA features available.
    has_avx2: bool = False
    has_fma: bool = False
    #: Micro-fused load-op with an indexed address un-laminates at
    #: issue on pre-Haswell cores (costs an extra fused-domain slot).
    unlaminates_indexed: bool = False
    #: Free-form knobs for the timing tables.
    extras: Dict[str, float] = field(default_factory=dict)

    def supports_block(self, block) -> bool:
        """Can this uarch execute the block's ISA extensions?

        The paper excludes AVX2 blocks from Ivy Bridge validation.
        """
        if block.uses_avx2_or_fma:
            return self.has_avx2 or self.has_fma
        return True


@dataclass(frozen=True)
class MachineDescriptor:
    """Picklable recipe for rebuilding a ``Machine`` elsewhere.

    The parallel profiling engine ships one of these to every worker
    process instead of a live machine: workers rebuild their own
    ``SimulatedMachine`` (scheduler, decomposer, cache models) from it,
    so no mutable simulator state is ever shared across processes.
    Two machines built from equal descriptors are deterministically
    identical — same tables, same per-block noise RNG seeding.

    ``noise`` is a ``repro.uarch.machine.NoiseParameters`` (itself a
    frozen dataclass of numbers, hence picklable) or ``None`` for the
    defaults; the loose typing avoids a circular import.

    ``trace`` is the run-scoped trace ID (or ``None`` outside traced
    runs): the parallel engine mints one per pipeline run and threads
    it here so pool workers stamp the parent run's identity onto every
    record they stream back (cross-process trace stitching,
    docs/observability.md).  It never influences the simulation.
    """

    uarch: str
    seed: int = 0
    noise: object = None
    trace: Optional[str] = None

    def build(self):
        """Construct a fresh ``Machine`` from this descriptor."""
        from repro.uarch.machine import Machine
        return Machine(self.uarch, seed=self.seed, noise=self.noise)
