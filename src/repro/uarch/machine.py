"""The simulated ground-truth machine.

``Machine`` plays the role of the physical Ivy Bridge / Haswell /
Skylake box in the paper: it executes a (functionally traced) unrolled
basic block and returns hardware-counter samples — core cycles, L1
misses, misaligned references, context switches — including realistic
OS noise.  The profiler (:mod:`repro.profiler`) treats it exactly like
hardware: it cannot see inside, only program counters and read them.

Timing is produced by the dataflow scheduler over the ground-truth
tables with *all* micro-architectural features enabled (zero idioms,
move elimination, split load-op scheduling, store forwarding, subnormal
assists, unpipelined division, cache modelling).
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.encoder import instruction_length
from repro.isa.instruction import BasicBlock
from repro.telemetry import core as telemetry
from repro.runtime.memory import VirtualMemory
from repro.runtime.trace import ExecutionTrace
from repro.simcore import config as simcore
from repro.simcore.periodicity import detect_event_periodicity
from repro.uarch.caches import CacheModel
from repro.uarch.counters import CounterSample
from repro.uarch.scheduler import (DataflowScheduler, InstrAnnotation,
                                   ScheduleResult)
from repro.uarch.tables import get_uarch
from repro.uarch.uops import Decomposer


@dataclass(frozen=True)
class NoiseParameters:
    """OS / measurement noise applied to every timed run.

    ``context_switch_rate`` is per simulated cycle; a context switch
    both inflates the cycle count and trips the context-switch counter,
    so the profiler's invariant enforcement rejects the run.
    ``jitter_probability`` models benign cycle jitter (TLB walks,
    prefetcher interference) that perturbs timing *without* tripping a
    counter — exactly why the paper requires 8 of 16 identical clean
    timings rather than trusting a single run.
    """

    context_switch_rate: float = 2.0e-7
    context_switch_cycles: Tuple[int, int] = (5_000, 50_000)
    jitter_probability: float = 0.12
    jitter_cycles: Tuple[int, int] = (1, 8)


@dataclass
class RunResult:
    """Everything one measurement run produces."""

    samples: List[CounterSample]
    schedule: ScheduleResult
    base_cycles: int
    #: Informational fast-path accounting (``attempted``,
    #: ``extrapolated``, per-layer flags); empty with the fast path
    #: off.  Never feeds counters or acceptance.
    fastpath: Dict[str, int] = field(default_factory=dict)
    #: Synthesized result for ``checkpoint_unroll`` iterations,
    #: byte-identical to a standalone :meth:`Machine.run` at that
    #: unroll factor.  Present only when every precondition for the
    #: combined two-factor fast path was certified.
    checkpoint: Optional["RunResult"] = None


class Machine:
    """One simulated CPU + OS environment."""

    #: Where unrolled benchmark code is laid out in (virtual) memory.
    CODE_BASE = 0x400000

    def __init__(self, uarch: str = "haswell", seed: int = 0,
                 noise: Optional[NoiseParameters] = None):
        self.desc, self.table, self.div_table = get_uarch(uarch)
        self._uarch_key = uarch
        self.seed = seed
        self.noise = noise if noise is not None else NoiseParameters()
        self.decomposer = Decomposer(self.desc, self.table, self.div_table)
        self.scheduler = DataflowScheduler(self.desc, self.decomposer)
        #: cycles -> context-switch probability; the exp() below is a
        #: pure function of the cycle count and shows up hot in both
        #: the scalar reps loop and lane-clone replay.
        self._p_switch_cache: dict = {}

    @property
    def name(self) -> str:
        return self.desc.name

    def describe(self) -> "MachineDescriptor":
        """A picklable descriptor that rebuilds this machine exactly.

        ``Machine.describe().build()`` yields a machine that times
        every block identically to this one (same tables, same seeded
        noise), which is what lets ``repro.parallel`` fan profiling
        out across processes without shipping simulator state.
        """
        from repro.uarch.descriptor import MachineDescriptor
        return MachineDescriptor(uarch=self._uarch_key, seed=self.seed,
                                 noise=self.noise)

    def supports(self, block: BasicBlock) -> bool:
        return self.desc.supports_block(block)

    # ------------------------------------------------------------------
    # Annotation: price the functional trace against the caches
    # ------------------------------------------------------------------

    def _data_cache_annotations(self, trace: ExecutionTrace,
                                memory: VirtualMemory,
                                steady: Optional[Tuple[int, int]] = None
                                ) -> Tuple[List[InstrAnnotation], int,
                                           int, Optional[Tuple[int, int]],
                                           int, int]:
        """Run the L1D model over the trace (warm-up pass + timed pass).

        Returns per-dynamic-instruction annotations, the timed pass's
        read/write miss counts, a steady witness for the *annotations*
        (``(t, q)``: annotation of iteration ``i`` equals that of
        ``i + q`` for ``i >= t``, or ``None``), how many tail
        iterations were replicated rather than simulated, and the
        iteration count at which the warm-up pass reached its all-hit
        fixed point (``unroll`` when it never did).

        ``steady`` is the trace's event-periodicity witness.  With it,
        each pass stops once ``q`` consecutive steady iterations
        produce no miss: the per-set LRU state is then at a fixed
        point (an all-hit pass over a line set touches exactly those
        lines, leaving last-access order — and therefore every future
        decision — unchanged), so the remaining iterations are
        verbatim copies.  Split-line penalties depend only on
        addresses, which repeat by the witness, so replicated
        annotations are exact.  Any miss resets the streak — a still
        growing footprint (L1-overflow kernels) keeps missing and
        never takes the shortcut.
        """
        desc = self.desc
        l1d = CacheModel(desc.l1d)
        physical = {}

        def paddr(address: int) -> int:
            hit = physical.get(address)
            if hit is None:
                hit = memory.physical_address(address)
                physical[address] = hit
            return hit

        events = trace.events
        if steady is None:
            line_size = desc.l1d.line_size
            miss_penalty = desc.l1_miss_penalty
            split_penalty = desc.split_line_penalty
            access_range = l1d.access_range
            # Warm-up pass (the first, untimed execution in Fig. 2).
            for event in events:
                for access in event.accesses:
                    access_range(paddr(access.address), access.width)

            read_misses = 0
            write_misses = 0
            annotations: List[InstrAnnotation] = []
            append_ann = annotations.append
            for event in events:
                ann = InstrAnnotation(div_class=event.div_class,
                                      subnormal=event.subnormal)
                for access in event.accesses:
                    misses = access_range(paddr(access.address),
                                          access.width)
                    penalty = misses * miss_penalty
                    if access.crosses_line(line_size):
                        penalty += split_penalty
                    if access.is_write:
                        write_misses += misses
                        ann.write_accesses.append((access.address,
                                                   access.width))
                    else:
                        read_misses += misses
                        ann.read_accesses.append((access.address,
                                                  access.width, penalty))
                append_ann(ann)
            return (annotations, read_misses, write_misses, None, 0,
                    trace.unroll)

        t, q = steady
        block_len = trace.block_len or 1
        unroll = trace.unroll
        line_size = desc.l1d.line_size
        miss_penalty = desc.l1_miss_penalty
        split_penalty = desc.split_line_penalty
        access_range = l1d.access_range

        # Warm-up pass, stopping at the all-hit fixed point: after a
        # full period of hits, further whole periods leave the LRU
        # recency order unchanged, so only the pass's trailing partial
        # period (identical, by the witness, to the iterations right
        # after the streak) still needs replaying.
        streak = 0
        warmup_fixed = unroll
        for i in range(unroll):
            missed = False
            for event in events[i * block_len:(i + 1) * block_len]:
                for access in event.accesses:
                    if access_range(paddr(access.address), access.width):
                        missed = True
            if i >= t and not missed:
                streak += 1
                if streak >= q:
                    warmup_fixed = i + 1
                    remainder = (unroll - 1 - i) % q
                    for event in events[(i + 1) * block_len:
                                        (i + 1 + remainder) * block_len]:
                        for access in event.accesses:
                            access_range(paddr(access.address),
                                         access.width)
                    break
            else:
                streak = 0

        # Timed pass, same early exit; the replicated tail shares the
        # source annotations' access lists (consumers never mutate
        # them) but gets fresh objects because ``fetch_stall`` is
        # charged per dynamic instruction later.
        read_misses = 0
        write_misses = 0
        annotations = []
        streak = 0
        simulated = unroll
        for i in range(unroll):
            missed = False
            for event in events[i * block_len:(i + 1) * block_len]:
                ann = InstrAnnotation(div_class=event.div_class,
                                      subnormal=event.subnormal)
                for access in event.accesses:
                    misses = access_range(paddr(access.address),
                                          access.width)
                    if misses:
                        missed = True
                    penalty = misses * miss_penalty
                    if access.crosses_line(line_size):
                        penalty += split_penalty
                    if access.is_write:
                        write_misses += misses
                        ann.write_accesses.append((access.address,
                                                   access.width))
                    else:
                        read_misses += misses
                        ann.read_accesses.append((access.address,
                                                  access.width, penalty))
                annotations.append(ann)
            if i >= t and not missed:
                streak += 1
                if streak >= q and i + 1 < unroll:
                    simulated = i + 1
                    break
            else:
                streak = 0

        for index in range(simulated * block_len, unroll * block_len):
            src = annotations[index - q * block_len]
            annotations.append(InstrAnnotation(
                div_class=src.div_class, subnormal=src.subnormal,
                read_accesses=src.read_accesses,
                write_accesses=src.write_accesses))

        if simulated < unroll:
            ann_steady = (simulated - q, q)
        elif streak >= q:
            # No tail left to replicate, but the final iterations were
            # all-hit and event-periodic — still a valid witness.
            ann_steady = (unroll - streak, q)
        else:
            ann_steady = None
        return (annotations, read_misses, write_misses, ann_steady,
                unroll - simulated, warmup_fixed)

    #: Fraction of capacity-exceeded code lines that still demand-miss
    #: past the L1I next-line prefetcher.  Straight-line benchmark code
    #: is the prefetcher's best case; most overflow lines arrive in
    #: time and only ~20% stall the front end (calibrated against the
    #: paper's 35 misses on a ~42 KB unrolled footprint).
    ICACHE_PREFETCH_MISS_FRACTION = 0.2

    def _instruction_cache_annotations(
            self, block: BasicBlock, unroll: int,
            annotations: List[InstrAnnotation]) -> int:
        """Charge front-end stalls for I-cache misses on the timed pass.

        The unrolled code is laid out contiguously from ``CODE_BASE``.
        A footprint within L1I capacity never misses after the warm-up
        execution; beyond capacity, the pass re-walks lines that LRU
        evicted, and the share the next-line prefetcher cannot hide
        stalls the front end — the effect that breaks naive 100x
        unrolling for large blocks (Table II) and motivates the
        two-unroll-factor technique.
        """
        desc = self.desc
        line = desc.l1i.line_size
        footprint = block.byte_length * unroll
        capacity = desc.l1i.size
        if footprint <= capacity:
            return 0
        excess_lines = (footprint - capacity + line - 1) // line
        misses = max(1, round(excess_lines
                              * self.ICACHE_PREFETCH_MISS_FRACTION))
        # Spread the demand misses evenly across the pass.
        total = len(annotations)
        stride = max(1, total // misses)
        charged = 0
        for index in range(0, total, stride):
            if charged == misses:
                break
            annotations[index].fetch_stall += desc.l1i_miss_penalty
            charged += 1
        return misses

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def run(self, block: BasicBlock, unroll: int, trace: ExecutionTrace,
            memory: VirtualMemory, reps: int = 16,
            keep_records: bool = False,
            checkpoint_unroll: Optional[int] = None) -> RunResult:
        """Time the unrolled block ``reps`` times (Fig. 2's measure loop).

        ``trace`` must come from a functional execution of exactly
        ``unroll`` copies of ``block`` under ``memory``'s final mapping.

        ``checkpoint_unroll`` (fast path only) asks for a second,
        synthesized result at a smaller unroll factor, derived from
        the same simulation pass — the combined two-factor run.  It is
        honoured (``RunResult.checkpoint``) only when provably exact:

        * the trace is event-periodic with period ``q`` and the L1D
          warm-up pass reached its all-hit fixed point within the
          checkpoint prefix, so the cache state entering the timed
          pass is the checkpoint run's own warm-up state advanced by
          ``unroll - checkpoint`` all-hit iterations;
        * ``(unroll - checkpoint) % q == 0`` — whole all-hit periods
          leave the LRU recency order (hence every later decision)
          unchanged, so that advance is the identity;
        * the timed pass went all-hit before the checkpoint, so both
          runs see the same miss totals; and
        * the unrolled footprint fits L1I (no fetch stalls at either
          factor).

        Under those conditions the annotation prefix is bit-identical
        and the (online) scheduler's state at the checkpoint equals
        the standalone run's final state; noise is drawn from a fresh
        per-(block, unroll) RNG, so the samples match byte-for-byte.
        """
        if len(trace) != unroll * len(block):
            raise ValueError("trace does not match block × unroll")
        fast = simcore.enabled() and not keep_records
        steady = detect_event_periodicity(trace) if fast else None
        (annotations, read_misses, write_misses, ann_steady,
         replicated, warmup_fixed) = self._data_cache_annotations(
             trace, memory, steady=steady)
        l1i_misses = self._instruction_cache_annotations(
            block, unroll, annotations)
        # An L1I overflow charges fetch stalls at a stride unrelated
        # to the iteration period, so the schedule never settles into
        # an iteration-periodic pattern — mandatory bail-out for
        # large-footprint kernels.
        sched_steady = ann_steady if (fast and not l1i_misses) else None
        checkpoint = None
        if fast and checkpoint_unroll and steady is not None \
                and 0 < checkpoint_unroll < unroll and not l1i_misses:
            q = steady[1]
            simulated = unroll - replicated
            if (unroll - checkpoint_unroll) % q == 0 \
                    and warmup_fixed <= checkpoint_unroll \
                    and simulated <= checkpoint_unroll:
                checkpoint = checkpoint_unroll
        schedule = self.scheduler.schedule(block, unroll, annotations,
                                           keep_records=keep_records,
                                           steady=sched_steady,
                                           checkpoint=checkpoint)
        base = CounterSample(
            cycles=schedule.cycles,
            l1d_read_misses=read_misses,
            l1d_write_misses=write_misses,
            l1i_misses=l1i_misses,
            misaligned_mem_refs=trace.misaligned_count(
                self.desc.l1d.line_size),
        )
        fastpath: Dict[str, int] = {}
        if fast:
            fastpath = {
                "attempted": 1,
                "trace_periodic": 1 if steady is not None else 0,
                "ann_replicated": replicated,
                "sched_extrapolated": schedule.extrapolated_iterations,
                "extrapolated": 1 if (replicated or
                                      schedule.extrapolated_iterations)
                else 0,
            }
        checkpoint_result = None
        if checkpoint is not None \
                and schedule.checkpoint_cycles is not None:
            cp_cycles = schedule.checkpoint_cycles
            cp_base = CounterSample(
                cycles=cp_cycles,
                l1d_read_misses=read_misses,
                l1d_write_misses=write_misses,
                l1i_misses=0,
                misaligned_mem_refs=trace.prefix(checkpoint)
                .misaligned_count(self.desc.l1d.line_size),
            )
            cp_rng = self._rng(block, checkpoint)
            cp_samples = [self._perturb(cp_base, cp_rng)
                          for _ in range(reps)]
            cp_replicated = max(0, checkpoint - (unroll - replicated))
            checkpoint_result = RunResult(
                samples=cp_samples,
                schedule=ScheduleResult(cycles=cp_cycles, records=[]),
                base_cycles=cp_cycles,
                fastpath={"attempted": 1, "trace_periodic": 1,
                          "ann_replicated": cp_replicated,
                          "sched_extrapolated": 0, "checkpointed": 1,
                          "extrapolated": 1})
        rng = self._rng(block, unroll)
        samples = [self._perturb(base, rng) for _ in range(reps)]
        if telemetry.is_enabled():
            clean = sum(1 for s in samples if s.is_clean)
            telemetry.count("machine.runs")
            telemetry.count("machine.simulated_cycles", schedule.cycles)
            telemetry.count("machine.samples_clean", clean)
            telemetry.count("machine.samples_rejected",
                            len(samples) - clean)
            telemetry.count("machine.l1d_read_misses", read_misses)
            telemetry.count("machine.l1d_write_misses", write_misses)
            telemetry.count("machine.l1i_misses", l1i_misses)
            telemetry.observe("machine.cycles_per_run", schedule.cycles)
            if fast:
                if fastpath["extrapolated"]:
                    telemetry.count("simcore.runs_extrapolated")
                    telemetry.count("simcore.iterations_skipped",
                                    max(replicated,
                                        schedule.extrapolated_iterations))
                else:
                    telemetry.count("simcore.runs_full")
            if checkpoint_result is not None:
                # Mirror what a standalone run at the checkpoint
                # factor would have recorded, so machine.* telemetry
                # is independent of whether the runs were combined.
                cp_samples = checkpoint_result.samples
                cp_clean = sum(1 for s in cp_samples if s.is_clean)
                telemetry.count("machine.runs")
                telemetry.count("machine.simulated_cycles",
                                checkpoint_result.base_cycles)
                telemetry.count("machine.samples_clean", cp_clean)
                telemetry.count("machine.samples_rejected",
                                len(cp_samples) - cp_clean)
                telemetry.count("machine.l1d_read_misses", read_misses)
                telemetry.count("machine.l1d_write_misses",
                                write_misses)
                telemetry.observe("machine.cycles_per_run",
                                  checkpoint_result.base_cycles)
                telemetry.count("simcore.runs_extrapolated")
                telemetry.count("simcore.checkpointed_runs")
        return RunResult(samples=samples, schedule=schedule,
                         base_cycles=schedule.cycles, fastpath=fastpath,
                         checkpoint=checkpoint_result)

    def _rng(self, block: BasicBlock, unroll: int) -> random.Random:
        digest = zlib.crc32(block.text().encode())
        return random.Random(f"{self.seed}:{digest}:{unroll}:{self.name}")

    def _perturb(self, base: CounterSample,
                 rng: random.Random) -> CounterSample:
        noise = self.noise
        p_switch = self._p_switch_cache.get(base.cycles)
        if p_switch is None:
            p_switch = 1.0 - math.exp(-base.cycles
                                      * noise.context_switch_rate)
            self._p_switch_cache[base.cycles] = p_switch
        if rng.random() < p_switch:
            return base.with_noise(
                extra_cycles=rng.randint(*noise.context_switch_cycles),
                context_switches=1)
        if rng.random() < noise.jitter_probability:
            return base.with_noise(
                extra_cycles=rng.randint(*noise.jitter_cycles))
        return base
