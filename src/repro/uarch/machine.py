"""The simulated ground-truth machine.

``Machine`` plays the role of the physical Ivy Bridge / Haswell /
Skylake box in the paper: it executes a (functionally traced) unrolled
basic block and returns hardware-counter samples — core cycles, L1
misses, misaligned references, context switches — including realistic
OS noise.  The profiler (:mod:`repro.profiler`) treats it exactly like
hardware: it cannot see inside, only program counters and read them.

Timing is produced by the dataflow scheduler over the ground-truth
tables with *all* micro-architectural features enabled (zero idioms,
move elimination, split load-op scheduling, store forwarding, subnormal
assists, unpipelined division, cache modelling).
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.isa.encoder import instruction_length
from repro.isa.instruction import BasicBlock
from repro.telemetry import core as telemetry
from repro.runtime.memory import VirtualMemory
from repro.runtime.trace import ExecutionTrace
from repro.uarch.caches import CacheModel
from repro.uarch.counters import CounterSample
from repro.uarch.scheduler import (DataflowScheduler, InstrAnnotation,
                                   ScheduleResult)
from repro.uarch.tables import get_uarch
from repro.uarch.uops import Decomposer


@dataclass(frozen=True)
class NoiseParameters:
    """OS / measurement noise applied to every timed run.

    ``context_switch_rate`` is per simulated cycle; a context switch
    both inflates the cycle count and trips the context-switch counter,
    so the profiler's invariant enforcement rejects the run.
    ``jitter_probability`` models benign cycle jitter (TLB walks,
    prefetcher interference) that perturbs timing *without* tripping a
    counter — exactly why the paper requires 8 of 16 identical clean
    timings rather than trusting a single run.
    """

    context_switch_rate: float = 2.0e-7
    context_switch_cycles: Tuple[int, int] = (5_000, 50_000)
    jitter_probability: float = 0.12
    jitter_cycles: Tuple[int, int] = (1, 8)


@dataclass
class RunResult:
    """Everything one measurement run produces."""

    samples: List[CounterSample]
    schedule: ScheduleResult
    base_cycles: int


class Machine:
    """One simulated CPU + OS environment."""

    #: Where unrolled benchmark code is laid out in (virtual) memory.
    CODE_BASE = 0x400000

    def __init__(self, uarch: str = "haswell", seed: int = 0,
                 noise: Optional[NoiseParameters] = None):
        self.desc, self.table, self.div_table = get_uarch(uarch)
        self._uarch_key = uarch
        self.seed = seed
        self.noise = noise if noise is not None else NoiseParameters()
        self.decomposer = Decomposer(self.desc, self.table, self.div_table)
        self.scheduler = DataflowScheduler(self.desc, self.decomposer)

    @property
    def name(self) -> str:
        return self.desc.name

    def describe(self) -> "MachineDescriptor":
        """A picklable descriptor that rebuilds this machine exactly.

        ``Machine.describe().build()`` yields a machine that times
        every block identically to this one (same tables, same seeded
        noise), which is what lets ``repro.parallel`` fan profiling
        out across processes without shipping simulator state.
        """
        from repro.uarch.descriptor import MachineDescriptor
        return MachineDescriptor(uarch=self._uarch_key, seed=self.seed,
                                 noise=self.noise)

    def supports(self, block: BasicBlock) -> bool:
        return self.desc.supports_block(block)

    # ------------------------------------------------------------------
    # Annotation: price the functional trace against the caches
    # ------------------------------------------------------------------

    def _data_cache_annotations(self, trace: ExecutionTrace,
                                memory: VirtualMemory
                                ) -> Tuple[List[InstrAnnotation], int, int]:
        """Run the L1D model over the trace (warm-up pass + timed pass).

        Returns per-dynamic-instruction annotations plus the timed
        pass's read/write miss counts.
        """
        desc = self.desc
        l1d = CacheModel(desc.l1d)
        physical = {}

        def paddr(address: int) -> int:
            hit = physical.get(address)
            if hit is None:
                hit = memory.physical_address(address)
                physical[address] = hit
            return hit

        # Warm-up pass (the first, untimed execution in Fig. 2).
        for access in trace.accesses:
            l1d.access_range(paddr(access.address), access.width)

        read_misses = 0
        write_misses = 0
        annotations: List[InstrAnnotation] = []
        for event in trace.events:
            ann = InstrAnnotation(div_class=event.div_class,
                                  subnormal=event.subnormal)
            for access in event.accesses:
                misses = l1d.access_range(paddr(access.address),
                                          access.width)
                penalty = misses * desc.l1_miss_penalty
                if access.crosses_line(desc.l1d.line_size):
                    penalty += desc.split_line_penalty
                if access.is_write:
                    write_misses += misses
                    ann.write_accesses.append((access.address,
                                               access.width))
                else:
                    read_misses += misses
                    ann.read_accesses.append((access.address,
                                              access.width, penalty))
            annotations.append(ann)
        return annotations, read_misses, write_misses

    #: Fraction of capacity-exceeded code lines that still demand-miss
    #: past the L1I next-line prefetcher.  Straight-line benchmark code
    #: is the prefetcher's best case; most overflow lines arrive in
    #: time and only ~20% stall the front end (calibrated against the
    #: paper's 35 misses on a ~42 KB unrolled footprint).
    ICACHE_PREFETCH_MISS_FRACTION = 0.2

    def _instruction_cache_annotations(
            self, block: BasicBlock, unroll: int,
            annotations: List[InstrAnnotation]) -> int:
        """Charge front-end stalls for I-cache misses on the timed pass.

        The unrolled code is laid out contiguously from ``CODE_BASE``.
        A footprint within L1I capacity never misses after the warm-up
        execution; beyond capacity, the pass re-walks lines that LRU
        evicted, and the share the next-line prefetcher cannot hide
        stalls the front end — the effect that breaks naive 100x
        unrolling for large blocks (Table II) and motivates the
        two-unroll-factor technique.
        """
        desc = self.desc
        line = desc.l1i.line_size
        footprint = block.byte_length * unroll
        capacity = desc.l1i.size
        if footprint <= capacity:
            return 0
        excess_lines = (footprint - capacity + line - 1) // line
        misses = max(1, round(excess_lines
                              * self.ICACHE_PREFETCH_MISS_FRACTION))
        # Spread the demand misses evenly across the pass.
        total = len(annotations)
        stride = max(1, total // misses)
        charged = 0
        for index in range(0, total, stride):
            if charged == misses:
                break
            annotations[index].fetch_stall += desc.l1i_miss_penalty
            charged += 1
        return misses

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def run(self, block: BasicBlock, unroll: int, trace: ExecutionTrace,
            memory: VirtualMemory, reps: int = 16,
            keep_records: bool = False) -> RunResult:
        """Time the unrolled block ``reps`` times (Fig. 2's measure loop).

        ``trace`` must come from a functional execution of exactly
        ``unroll`` copies of ``block`` under ``memory``'s final mapping.
        """
        if len(trace) != unroll * len(block):
            raise ValueError("trace does not match block × unroll")
        annotations, read_misses, write_misses = \
            self._data_cache_annotations(trace, memory)
        l1i_misses = self._instruction_cache_annotations(
            block, unroll, annotations)
        schedule = self.scheduler.schedule(block, unroll, annotations,
                                           keep_records=keep_records)
        base = CounterSample(
            cycles=schedule.cycles,
            l1d_read_misses=read_misses,
            l1d_write_misses=write_misses,
            l1i_misses=l1i_misses,
            misaligned_mem_refs=trace.misaligned_count(
                self.desc.l1d.line_size),
        )
        rng = self._rng(block, unroll)
        samples = [self._perturb(base, rng) for _ in range(reps)]
        if telemetry.is_enabled():
            clean = sum(1 for s in samples if s.is_clean)
            telemetry.count("machine.runs")
            telemetry.count("machine.simulated_cycles", schedule.cycles)
            telemetry.count("machine.samples_clean", clean)
            telemetry.count("machine.samples_rejected",
                            len(samples) - clean)
            telemetry.count("machine.l1d_read_misses", read_misses)
            telemetry.count("machine.l1d_write_misses", write_misses)
            telemetry.count("machine.l1i_misses", l1i_misses)
            telemetry.observe("machine.cycles_per_run", schedule.cycles)
        return RunResult(samples=samples, schedule=schedule,
                         base_cycles=schedule.cycles)

    def _rng(self, block: BasicBlock, unroll: int) -> random.Random:
        digest = zlib.crc32(block.text().encode())
        return random.Random(f"{self.seed}:{digest}:{unroll}:{self.name}")

    def _perturb(self, base: CounterSample,
                 rng: random.Random) -> CounterSample:
        noise = self.noise
        p_switch = 1.0 - math.exp(-base.cycles
                                  * noise.context_switch_rate)
        if rng.random() < p_switch:
            return base.with_noise(
                extra_cycles=rng.randint(*noise.context_switch_cycles),
                context_switches=1)
        if rng.random() < noise.jitter_probability:
            return base.with_noise(
                extra_cycles=rng.randint(*noise.jitter_cycles))
        return base
