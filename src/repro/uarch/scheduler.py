"""Greedy dataflow scheduler: the out-of-order execution model.

Given a stream of decomposed instructions, the scheduler assigns each
micro-op a dispatch cycle respecting

* data dependencies (register renaming over base registers + flags,
  store-to-load forwarding when a functional trace is supplied),
* structural hazards (one micro-op per port per cycle; unpipelined
  units occupy their port for ``occupancy`` cycles),
* the front end (``issue_width`` fused-domain micro-ops allocated per
  cycle, plus any instruction-fetch stall cycles), and
* dynamic penalties (L1 miss, split-line access, subnormal assist).

Micro-ops are visited in program order but may dispatch out of order —
a later load with ready inputs takes an earlier cycle than a stalled
older ALU op, which is precisely the behaviour behind the paper's
llvm-mca mis-scheduling case study.

The same scheduler powers the ground-truth machine and the IACA /
llvm-mca / OSACA analogues; only tables and policies differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.instruction import BasicBlock, Instruction
from repro.isa.operands import is_reg
from repro.uarch.descriptor import UarchDescriptor
from repro.uarch.uops import DecomposedInstruction, Decomposer, Uop


@dataclass
class InstrAnnotation:
    """Dynamic facts about one executed instruction (from the trace)."""

    div_class: Optional[Tuple[int, bool]] = None
    subnormal: bool = False
    #: (address, width, extra_latency) per read access.
    read_accesses: List[Tuple[int, int, int]] = field(default_factory=list)
    #: (address, width) per write access.
    write_accesses: List[Tuple[int, int]] = field(default_factory=list)
    #: Front-end stall cycles charged before this instruction.
    fetch_stall: int = 0


@dataclass(frozen=True)
class UopRecord:
    """One scheduled micro-op, for traces and figures."""

    instr_index: int
    slot: int
    mnemonic: str
    kind: str
    port: Optional[int]
    dispatch: int
    finish: int


@dataclass
class ScheduleResult:
    cycles: int
    records: List[UopRecord]

    def port_pressure(self) -> Dict[int, int]:
        pressure: Dict[int, int] = {}
        for rec in self.records:
            if rec.port is not None:
                pressure[rec.port] = pressure.get(rec.port, 0) + 1
        return pressure

    def instruction_dispatches(self) -> Dict[int, int]:
        """First dispatch cycle of each dynamic instruction."""
        first: Dict[int, int] = {}
        for rec in self.records:
            cur = first.get(rec.instr_index)
            if cur is None or rec.dispatch < cur:
                first[rec.instr_index] = rec.dispatch
        return first


class _PortFile:
    """Tracks per-cycle port occupancy."""

    def __init__(self, ports: Sequence[int]):
        self._busy: Dict[int, set] = {p: set() for p in ports}
        self._reserved_until: Dict[int, int] = {p: 0 for p in ports}
        self.counts: Dict[int, int] = {p: 0 for p in ports}

    def earliest_free(self, port: int, lower: int, occupancy: int) -> int:
        cycle = max(lower, self._reserved_until[port])
        busy = self._busy[port]
        while cycle in busy:
            cycle += 1
        return cycle

    def reserve(self, port: int, cycle: int, occupancy: int) -> None:
        self._busy[port].add(cycle)
        if occupancy > 1:
            self._reserved_until[port] = cycle + occupancy
        self.counts[port] += 1


class DataflowScheduler:
    """Schedules an unrolled instruction stream on one core."""

    #: How many in-flight stores are searched for forwarding.
    STORE_WINDOW = 48

    def __init__(self, desc: UarchDescriptor, decomposer: Decomposer,
                 *, model_memory_dependencies: bool = True):
        self.desc = desc
        self.decomposer = decomposer
        self.model_memory_dependencies = model_memory_dependencies

    # ------------------------------------------------------------------

    def schedule(self, block: BasicBlock, unroll: int,
                 annotations: Optional[Sequence[InstrAnnotation]] = None,
                 keep_records: bool = False) -> ScheduleResult:
        """Schedule ``unroll`` copies of ``block``; returns the makespan."""
        desc = self.desc
        ports = _PortFile(desc.ports)
        reg_ready: Dict[str, int] = {}
        flags_ready = 0
        #: Recent stores: (address, width, data_ready_cycle).
        stores: List[Tuple[int, int, int]] = []
        records: List[UopRecord] = []
        makespan = 0
        slots_used = 0
        stall_cycles = 0
        index = 0

        block_len = len(block)
        for iteration in range(unroll):
            for slot in range(block_len):
                instr = block.instructions[slot]
                ann = annotations[index] if annotations else None
                stall_cycles += ann.fetch_stall if ann else 0
                decomposed = self.decomposer.decompose(
                    instr, ann.div_class if ann else None)
                alloc = slots_used // desc.issue_width + stall_cycles
                finish = self._schedule_instruction(
                    instr, decomposed, ann, alloc, ports, reg_ready,
                    stores, records if keep_records else None,
                    index, slot)
                slots_used += decomposed.fused_slots
                if instr.info.reads_flags:
                    pass  # handled inside via flags_ready closure
                makespan = max(makespan, finish)
                index += 1

        # Drain the front end: even pure-nop streams take alloc time.
        makespan = max(makespan,
                       (slots_used + desc.issue_width - 1)
                       // desc.issue_width + stall_cycles)
        return ScheduleResult(cycles=makespan, records=records)

    # ------------------------------------------------------------------

    def _schedule_instruction(self, instr: Instruction,
                              decomposed: DecomposedInstruction,
                              ann: Optional[InstrAnnotation],
                              alloc: int,
                              ports: _PortFile,
                              reg_ready: Dict[str, int],
                              stores: List[Tuple[int, int, int]],
                              records: Optional[List[UopRecord]],
                              index: int, slot: int) -> int:
        desc = self.desc

        def ready_of(bases) -> int:
            return max((reg_ready.get(b, 0) for b in bases), default=0)

        mem = instr.memory_operand
        addr_bases = [r.base for r in mem.registers] if mem else []
        if instr.mnemonic in ("push", "pop"):
            addr_bases.append("rsp")
        reads = instr.regs_read \
            if self.decomposer.recognize_zero_idioms \
            else instr.regs_read_raw
        data_bases = [r.base for r in reads
                      if r.base not in addr_bases]
        if instr.info.reads_flags:
            data_bases.append("__flags__")
        write_bases = [r.base for r in instr.regs_written]
        if instr.info.writes_flags:
            write_bases.append("__flags__")

        # Rename-stage instructions: no execution at all.
        if decomposed.is_zero_idiom:
            for base in write_bases:
                reg_ready[base] = alloc
            if records is not None:
                records.append(UopRecord(index, slot, instr.mnemonic,
                                         "eliminated", None, alloc, alloc))
            return alloc
        if decomposed.is_eliminated_move:
            src = next((op for op in instr.operands[1:] if is_reg(op)),
                       None)
            src_ready = reg_ready.get(src.base, 0) if src is not None else 0
            value_ready = max(alloc, src_ready)
            for base in write_bases:
                reg_ready[base] = value_ready
            if records is not None:
                records.append(UopRecord(index, slot, instr.mnemonic,
                                         "eliminated", None, alloc,
                                         value_ready))
            return value_ready
        if not decomposed.uops:  # plain nop
            return alloc

        addr_ready = max(alloc, ready_of(addr_bases))
        data_ready = max(alloc, ready_of(data_bases))

        load_result = None
        compute_result = None
        finish_max = alloc
        reads = list(ann.read_accesses) if ann else []
        writes = list(ann.write_accesses) if ann else []

        for uop in decomposed.uops:
            if uop.kind == "load":
                lower = addr_ready
            elif uop.kind == "load_op":
                # Un-split load-op (llvm-mca policy): waits for all.
                lower = max(addr_ready, data_ready)
            elif uop.kind == "store_addr":
                lower = addr_ready
            elif uop.kind == "store_data":
                lower = compute_result if compute_result is not None \
                    else data_ready
            else:  # compute
                lower = data_ready
                if load_result is not None:
                    lower = max(lower, load_result)

            dispatch, port = self._dispatch(ports, uop, lower)
            latency = uop.latency
            if ann and ann.subnormal and uop.kind in ("compute", "load_op"):
                latency += desc.subnormal_penalty
            finish = dispatch + latency

            if uop.kind in ("load", "load_op"):
                if reads:
                    finish += reads[0][2]  # miss/split penalty
                finish = self._apply_forwarding(finish, reads, stores,
                                                dispatch)
                if reads:
                    reads.pop(0)
                load_result = finish
                if uop.kind == "load_op":
                    compute_result = finish
            elif uop.kind == "compute":
                compute_result = finish
            elif uop.kind == "store_data":
                for address, width in writes:
                    stores.append((address, width, finish))
                del stores[:-self.STORE_WINDOW]

            finish_max = max(finish_max, finish)
            if records is not None:
                records.append(UopRecord(index, slot, instr.mnemonic,
                                         uop.kind, port, dispatch, finish))

        result_ready = compute_result if compute_result is not None \
            else (load_result if load_result is not None else finish_max)
        for base in write_bases:
            reg_ready[base] = result_ready
        return finish_max

    def _apply_forwarding(self, finish: int, reads, stores,
                          dispatch: int) -> int:
        """Store-to-load forwarding / memory-dependence stalls."""
        if not (self.model_memory_dependencies and reads and stores):
            return finish
        address, width, _penalty = reads[0]
        lo, hi = address, address + width
        for s_addr, s_width, s_ready in reversed(stores):
            s_lo, s_hi = s_addr, s_addr + s_width
            if hi <= s_lo or lo >= s_hi:
                continue  # disjoint
            if s_lo <= lo and hi <= s_hi:
                # Fully forwarded from the store buffer.
                return max(finish,
                           s_ready + self.desc.store_forward_latency)
            # Partial overlap: the load replays from the cache after
            # the store commits — an expensive stall.
            return max(finish, s_ready + self.desc.store_forward_latency
                       + 10)
        return finish

    def _dispatch(self, ports: _PortFile, uop: Uop,
                  lower: int) -> Tuple[int, Optional[int]]:
        if not uop.ports:
            return lower, None
        best_cycle = None
        best_port = None
        for port in uop.ports:
            cycle = ports.earliest_free(port, lower, uop.occupancy)
            if best_cycle is None or cycle < best_cycle or \
                    (cycle == best_cycle
                     and ports.counts[port] < ports.counts[best_port]):
                best_cycle, best_port = cycle, port
        ports.reserve(best_port, best_cycle, uop.occupancy)
        return best_cycle, best_port
