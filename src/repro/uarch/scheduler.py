"""Greedy dataflow scheduler: the out-of-order execution model.

Given a stream of decomposed instructions, the scheduler assigns each
micro-op a dispatch cycle respecting

* data dependencies (register renaming over base registers + flags,
  store-to-load forwarding when a functional trace is supplied),
* structural hazards (one micro-op per port per cycle; unpipelined
  units occupy their port for ``occupancy`` cycles),
* the front end (``issue_width`` fused-domain micro-ops allocated per
  cycle, plus any instruction-fetch stall cycles), and
* dynamic penalties (L1 miss, split-line access, subnormal assist).

Micro-ops are visited in program order but may dispatch out of order —
a later load with ready inputs takes an earlier cycle than a stalled
older ALU op, which is precisely the behaviour behind the paper's
llvm-mca mis-scheduling case study.

The same scheduler powers the ground-truth machine and the IACA /
llvm-mca / OSACA analogues; only tables and policies differ.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.instruction import BasicBlock, Instruction
from repro.isa.operands import is_reg
from repro.simcore import config as simcore
from repro.uarch.descriptor import UarchDescriptor
from repro.uarch.uops import DecomposedInstruction, Decomposer, Uop


@dataclass(slots=True)
class InstrAnnotation:
    """Dynamic facts about one executed instruction (from the trace)."""

    div_class: Optional[Tuple[int, bool]] = None
    subnormal: bool = False
    #: (address, width, extra_latency) per read access.
    read_accesses: List[Tuple[int, int, int]] = field(default_factory=list)
    #: (address, width) per write access.
    write_accesses: List[Tuple[int, int]] = field(default_factory=list)
    #: Front-end stall cycles charged before this instruction.
    fetch_stall: int = 0


@dataclass(frozen=True, slots=True)
class UopRecord:
    """One scheduled micro-op, for traces and figures."""

    instr_index: int
    slot: int
    mnemonic: str
    kind: str
    port: Optional[int]
    dispatch: int
    finish: int


@dataclass
class ScheduleResult:
    cycles: int
    records: List[UopRecord]
    #: Iterations whose timing was derived analytically from a
    #: scheduler-state fixed point instead of being simulated (0 when
    #: the fast path was off or never converged).
    extrapolated_iterations: int = 0
    #: Makespan after the first ``checkpoint`` iterations — what a
    #: standalone schedule of that prefix would have returned (the
    #: scheduler is an online algorithm, so the prefix of a longer run
    #: is bit-identical to a shorter run given identical annotations).
    #: ``None`` when no checkpoint was requested or reached.
    checkpoint_cycles: Optional[int] = None

    def port_pressure(self) -> Dict[int, int]:
        pressure: Dict[int, int] = {}
        for rec in self.records:
            if rec.port is not None:
                pressure[rec.port] = pressure.get(rec.port, 0) + 1
        return pressure

    def instruction_dispatches(self) -> Dict[int, int]:
        """First dispatch cycle of each dynamic instruction."""
        first: Dict[int, int] = {}
        for rec in self.records:
            cur = first.get(rec.instr_index)
            if cur is None or rec.dispatch < cur:
                first[rec.instr_index] = rec.dispatch
        return first


class _PortFile:
    """Tracks per-cycle port occupancy.

    Occupancy is kept as a dense floor plus a sparse overflow set:
    every cycle below ``_dense[p]`` is busy, and ``_busy[p]`` holds
    the busy cycles at or above the floor.  On a saturated port the
    floor simply advances and the sparse set stays empty — which both
    short-circuits the free-cycle walk and gives the steady-state
    detector a finite representation of an ever-growing busy history.
    """

    def __init__(self, ports: Sequence[int]):
        self._busy: Dict[int, set] = {p: set() for p in ports}
        self._dense: Dict[int, int] = {p: 0 for p in ports}
        self._reserved_until: Dict[int, int] = {p: 0 for p in ports}
        self.counts: Dict[int, int] = {p: 0 for p in ports}
        #: Lowest probe start seen per port since the last detector
        #: capture (``None`` = not probed).  Busy cycles below this
        #: floor can never be consulted by a replayed window, so the
        #: steady-state signature may ignore them.
        self.floor_seen: Dict[int, Optional[int]] = \
            {p: None for p in ports}

    def earliest_free(self, port: int, lower: int, occupancy: int) -> int:
        cycle = self._reserved_until[port]
        if lower > cycle:
            cycle = lower
        dense = self._dense[port]
        if cycle < dense:
            cycle = dense
        seen = self.floor_seen[port]
        if seen is None or cycle < seen:
            self.floor_seen[port] = cycle
        busy = self._busy[port]
        while cycle in busy:
            cycle += 1
        return cycle

    def reset_floors(self) -> None:
        for port in self.floor_seen:
            self.floor_seen[port] = None

    def reserve(self, port: int, cycle: int, occupancy: int) -> None:
        if cycle == self._dense[port]:
            busy = self._busy[port]
            edge = cycle + 1
            while edge in busy:
                busy.remove(edge)
                edge += 1
            self._dense[port] = edge
        else:
            self._busy[port].add(cycle)
        if occupancy > 1:
            self._reserved_until[port] = cycle + occupancy
        self.counts[port] += 1


class _SteadyDetector:
    """Detects a time-shifted fixed point of the scheduler state.

    Given the annotation witness ``(t, q)`` (iteration ``i >= t`` has
    the same annotations as ``i + q``), the only scheduler inputs that
    can still vary between iterations are the *carried state*: register
    ready times, port occupancy, and the store buffer.  This class
    snapshots that state at iteration boundaries, normalised relative
    to the front-end allocation clock ``t_j = slots_used //
    issue_width + stall_cycles``:

    * ready times / busy cycles / store-buffer entries earlier than
      ``t_j`` can never influence a future decision (every future
      dispatch lower bound is ``>= t_j``), so they are replaced by an
      inertness sentinel;
    * everything still live is expressed relative to an *anchor* — the
      maximum live state value — so that state marching ahead of the
      front end (saturated ports, latency chains) still produces a
      finite, repeating snapshot;
    * port-use counts only matter through pairwise comparisons (the
      dispatch tie-break), so they are normalised to their minimum.

    Snapshots are taken every ``P`` iterations, where ``P`` is the
    smallest multiple of ``q`` whose slot count is a multiple of the
    issue width — that makes the allocation clock advance by exactly
    ``s = slots(P) / issue_width`` per window, independent of
    ``slots_used % issue_width``.  Boundaries are aligned so that
    ``unroll`` is a whole number of windows past them.  When two
    consecutive snapshots are equal, all live state shifted by a
    uniform ``dt = anchor - prev_anchor``, and every future scheduling
    decision replays the last window shifted by ``dt`` — provided the
    replay cannot observe the allocation clock, which only advances by
    ``s <= dt`` per window.  That is guaranteed either because
    ``dt == s`` (state advances in lockstep with the front end) or
    because no decision in the window was *alloc-sensitive* (the
    scheduler flags any dispatch whose outcome could have been
    different had the allocation clock been shifted differently).  The
    makespan of the remaining ``R`` windows is then
    ``max(window_peak + R * dt, front-end drain)`` — computed
    analytically, byte-identical to simulating them.
    """

    #: Sentinel for state values at or below the allocation clock:
    #: provably inert for every future decision, now and forever
    #: (every probe floor only grows).
    STALE = None

    #: After this many consecutive snapshot mismatches the detector
    #: turns itself off: blocks whose state never settles (mixed-rate
    #: kernels, growing latency chains) would otherwise pay the full
    #: signature cost at every remaining boundary for nothing.  Purely
    #: a cost heuristic — firing later or never cannot change output.
    GIVE_UP = 12

    def __init__(self, desc: UarchDescriptor, steady: Tuple[int, int],
                 unroll: int, read_bases: frozenset = frozenset(),
                 checkpoint: Optional[int] = None):
        self.width = desc.issue_width
        self.t, self.q = steady
        self.unroll = unroll
        #: Iteration count at which the caller needs an intermediate
        #: cycle reading (the smaller unroll factor of a combined
        #: two-factor run).  A fixed point reached *before* it may only
        #: fire from a boundary a whole number of windows away from it.
        self.checkpoint = checkpoint
        self._failures = 0
        self.dead = False
        #: Register bases some instruction of the block actually reads.
        #: A ready time for anything else can never bind a decision —
        #: a dead destination paced differently from the rest of the
        #: state (e.g. an unused load result beside a latency chain)
        #: would otherwise block convergence forever.
        self.read_bases = read_bases
        #: Clamp margin for store readiness: an older store can only
        #: raise a load's finish (already ``>= t_j``) through
        #: ``ready + store_forward_latency (+ 10)``, which is a no-op
        #: once ``ready`` falls below ``t_j - latency - 10``.
        self.store_margin = desc.store_forward_latency + 10
        self.period: Optional[int] = None
        self._slots_at_t: Optional[int] = 0 if self.t == 0 else None
        self._prev: Optional[tuple] = None
        self._prev_slots = 0
        self._prev_clock = 0
        self._prev_anchor = 0
        #: Distinct port sets dispatched to so far (the scheduling
        #: loop feeds this); a set appearing between two boundaries
        #: makes their signatures structurally unequal — safe.
        self.port_sets: set = set()
        #: Set by :meth:`check` whenever it snapshots a boundary — the
        #: caller resets its window-peak tracker on capture.
        self.captured = False

    def _signature(self, clock: int, slots_used: int, stall_cycles: int,
                   ports: _PortFile, reg_ready: Dict[str, int],
                   stores: List[Tuple[int, int, int]]
                   ) -> Tuple[tuple, int]:
        """Build the boundary snapshot; returns ``(sig, anchor)``.

        Values are first collected raw (with :data:`STALE` standing in
        for anything at or below the clock), the anchor is the maximum
        live value (or the clock if nothing is live), and offsets are
        taken from the anchor — so two snapshots compare equal exactly
        when the live state is a uniform time-shift.
        """
        floor = clock - self.store_margin
        port_order = sorted(ports.counts)
        anchor = clock
        raw_ports = []
        for port in port_order:
            busy = ports._busy[port]
            stale = [c for c in busy if c < clock]
            if stale:
                busy.difference_update(stale)
            # A replayed window only probes this port at (shifted
            # copies of) the probe starts observed this window, so
            # anything below the observed floor is invisible to it.
            # The floor itself joins the signature, pinning matched
            # windows to corresponding probe patterns.  (The prune is
            # a *view* — the real busy set must survive in case the
            # simulation continues.)
            pfloor = ports.floor_seen[port]
            if pfloor is None:
                cycles = []
                dense = res = self.STALE
            else:
                lo = pfloor if pfloor > clock else clock
                cycles = sorted(c for c in busy if c >= lo)
                dense = ports._dense[port]
                dense = dense if dense > clock and dense >= pfloor \
                    else self.STALE
                res = ports._reserved_until[port]
                res = res if res > clock and res >= pfloor \
                    else self.STALE
                if pfloor > anchor:
                    anchor = pfloor
            if cycles and cycles[-1] > anchor:
                anchor = cycles[-1]
            if dense is not None and dense > anchor:
                anchor = dense
            if res is not None and res > anchor:
                anchor = res
            raw_ports.append((pfloor, dense, cycles, res))
        read_bases = self.read_bases
        live_regs = [(base, ready) for base, ready in reg_ready.items()
                     if ready > clock and base in read_bases]
        for _, ready in live_regs:
            if ready > anchor:
                anchor = ready
        # Drop the longest all-stale *prefix* of the store buffer (the
        # forwarding scan walks newest-first, so by the time it reaches
        # the prefix every candidate there — and everything older — is
        # inert).  Later stale entries keep their position under a
        # sentinel: they intercept the scan, but their contribution is
        # a no-op either way.
        start = 0
        for _, _, ready in stores:
            if ready > floor:
                break
            start += 1
        raw_stores = [(addr, width,
                       ready if ready > floor else self.STALE)
                      for addr, width, ready in stores[start:]]
        for _, _, ready in raw_stores:
            if ready is not None and ready > anchor:
                anchor = ready
        port_sig = tuple(
            (self.STALE if pfloor is None else pfloor - anchor,
             self.STALE if dense is None else dense - anchor,
             tuple(c - anchor for c in cycles),
             self.STALE if res is None else res - anchor)
            for pfloor, dense, cycles, res in raw_ports)
        regs = frozenset((base, ready - anchor)
                         for base, ready in live_regs)
        store_sig = tuple(
            (addr, width,
             self.STALE if ready is None else ready - anchor)
            for addr, width, ready in raw_stores)
        # Port-use counts only matter through the dispatch tie-break,
        # which compares counts *within one micro-op's port set* — so
        # normalise within each port set this schedule has actually
        # dispatched to.  (A global min would drag never-used ports
        # in, whose count gap grows forever and kills every match.)
        counts = ports.counts
        count_sig = tuple(
            sorted((ps, tuple(counts[p] - min(counts[q] for q in ps)
                              for p in ps))
                   for ps in self.port_sets))
        sig = (slots_used % self.width, stall_cycles, port_sig,
               regs, store_sig, count_sig)
        return sig, anchor

    def check(self, done: int, slots_used: int, stall_cycles: int,
              ports: _PortFile, reg_ready: Dict[str, int],
              stores: List[Tuple[int, int, int]], makespan: int,
              window_peak: int, alloc_sensitive: bool
              ) -> Optional[Tuple[int, int, Optional[int]]]:
        """Called after each completed iteration.

        ``done`` is how many iterations have been scheduled;
        ``window_peak`` is the highest finish time and
        ``alloc_sensitive`` whether any alloc-sensitive decision was
        made since the last capture.  Returns ``(total_cycles,
        skipped_iterations, checkpoint_cycles)`` once the state
        provably repeats, else ``None``.  ``checkpoint_cycles`` is
        filled only when the fire jumps over a still-pending
        checkpoint (the caller records checkpoints it reaches itself).
        """
        self.captured = False
        if self.dead:
            return None
        if self.period is None:
            if self._slots_at_t is None:
                if done == self.t:
                    self._slots_at_t = slots_used
                return None
            if done != self.t + self.q:
                return None
            slots_q = slots_used - self._slots_at_t
            self.period = self.q * (
                self.width // math.gcd(slots_q, self.width))
        period = self.period
        remaining = self.unroll - done
        if done < self.t or remaining % period:
            return None
        clock = slots_used // self.width + stall_cycles
        sig, anchor = self._signature(clock, slots_used, stall_cycles,
                                      ports, reg_ready, stores)
        cp = self.checkpoint
        # A fixed point reached before a pending checkpoint may only
        # fire when the checkpoint is a whole number of windows ahead
        # — otherwise keep simulating (and keep re-capturing, so the
        # per-window probe floors stay in phase) until the caller has
        # recorded the checkpoint itself.
        deferred = cp is not None and done < cp \
            and (cp - done) % period != 0
        if remaining and not deferred and self._prev is not None \
                and sig == self._prev and done - period >= self.t:
            # Every remaining window replays the last one shifted by
            # ``dt``; the front end advances by ``s <= dt`` per
            # window, which is safe exactly when the window never
            # looked at the allocation clock (or when dt == s).
            dt = anchor - self._prev_anchor
            s = clock - self._prev_clock
            if dt >= s and (dt == s or not alloc_sensitive):
                windows = remaining // period
                per_window = slots_used - self._prev_slots
                slots_total = slots_used + windows * per_window
                drain = (slots_total + self.width - 1) // self.width \
                    + stall_cycles
                cycles = max(makespan, window_peak + windows * dt,
                             drain)
                cp_cycles = None
                if cp is not None and done < cp:
                    # Same formula, truncated at the checkpoint
                    # boundary: the replay argument holds at every
                    # intermediate aligned boundary too.
                    w1 = (cp - done) // period
                    cp_slots = slots_used + w1 * per_window
                    cp_drain = (cp_slots + self.width - 1) \
                        // self.width + stall_cycles
                    cp_cycles = max(makespan,
                                    window_peak + w1 * dt, cp_drain)
                return cycles, remaining, cp_cycles
        if self._prev is not None and sig != self._prev:
            self._failures += 1
            if self._failures >= self.GIVE_UP:
                self.dead = True
                return None
        self._prev, self._prev_slots = sig, slots_used
        self._prev_clock, self._prev_anchor = clock, anchor
        self.captured = True
        return None


class DataflowScheduler:
    """Schedules an unrolled instruction stream on one core."""

    #: How many in-flight stores are searched for forwarding.
    STORE_WINDOW = 48

    def __init__(self, desc: UarchDescriptor, decomposer: Decomposer,
                 *, model_memory_dependencies: bool = True):
        self.desc = desc
        self.decomposer = decomposer
        self.model_memory_dependencies = model_memory_dependencies
        #: Whether the current detector window contains a decision
        #: whose outcome could have depended on the exact value of the
        #: allocation clock (see :class:`_SteadyDetector`).
        self._alloc_sensitive = False

    # ------------------------------------------------------------------

    def schedule(self, block: BasicBlock, unroll: int,
                 annotations: Optional[Sequence[InstrAnnotation]] = None,
                 keep_records: bool = False,
                 steady: Optional[Tuple[int, int]] = None,
                 checkpoint: Optional[int] = None) -> ScheduleResult:
        """Schedule ``unroll`` copies of ``block``; returns the makespan.

        ``steady`` is an optional annotation-periodicity witness
        ``(t, q)`` (iteration ``i >= t`` annotated identically to
        ``i + q``) enabling the fixed-point extrapolation fast path.
        A purely static schedule (no annotations) is trivially
        periodic, so models pick up the witness ``(0, 1)`` on their
        own whenever the fast path is enabled.

        ``checkpoint`` asks for the makespan after that many
        iterations as well (``ScheduleResult.checkpoint_cycles``) —
        the scheduler is online, so the reading is bit-identical to a
        standalone schedule of the prefix, provided the caller has
        certified that the prefix annotations are identical too.
        """
        desc = self.desc
        if steady is None and annotations is None and not keep_records \
                and simcore.enabled():
            steady = (0, 1)
        slot_plans = [self._slot_plan(instr)
                      for instr in block.instructions]
        detector = None
        if steady is not None and not keep_records and unroll > 1:
            read_bases = set()
            for plan in slot_plans:
                read_bases.update(plan[1])
                read_bases.update(plan[2])
                if plan[4] is not None:
                    read_bases.add(plan[4])
            detector = _SteadyDetector(desc, steady, unroll,
                                       frozenset(read_bases),
                                       checkpoint=checkpoint)
        self._alloc_sensitive = False
        ports = _PortFile(desc.ports)
        reg_ready: Dict[str, int] = {}
        #: Recent stores: (address, width, data_ready_cycle).
        stores: List[Tuple[int, int, int]] = []
        records: List[UopRecord] = []
        makespan = 0
        slots_used = 0
        stall_cycles = 0
        index = 0
        window_peak = 0

        # Everything that depends only on the instruction — register
        # dependency structure and the (non-division) decomposition —
        # is computed once per slot, not once per dynamic instruction.
        decomposer = self.decomposer
        issue_width = desc.issue_width
        schedule_instruction = self._schedule_instruction
        port_sets = detector.port_sets if detector is not None else None

        block_len = len(block)
        checkpoint_cycles: Optional[int] = None
        for iteration in range(unroll):
            for slot in range(block_len):
                plan = slot_plans[slot]
                instr = plan[0]
                ann = annotations[index] if annotations else None
                if ann is not None:
                    stall_cycles += ann.fetch_stall
                    div_class = ann.div_class
                    decomposed = plan[5] if div_class is None \
                        else decomposer.decompose(instr, div_class)
                else:
                    decomposed = plan[5]
                alloc = slots_used // issue_width + stall_cycles
                finish = schedule_instruction(
                    plan, decomposed, ann, alloc, ports, reg_ready,
                    stores, records if keep_records else None,
                    index, slot)
                slots_used += decomposed.fused_slots
                if finish > makespan:
                    makespan = finish
                if finish > window_peak:
                    window_peak = finish
                if port_sets is not None:
                    for uop in decomposed.uops:
                        if uop.ports:
                            port_sets.add(uop.ports)
                index += 1
            if iteration + 1 == checkpoint:
                # Same drain formula as the final return — this *is*
                # what a standalone schedule of the prefix returns.
                checkpoint_cycles = max(
                    makespan,
                    (slots_used + issue_width - 1)
                    // issue_width + stall_cycles)
            if detector is not None and not detector.dead:
                hit = detector.check(iteration + 1, slots_used,
                                     stall_cycles, ports, reg_ready,
                                     stores, makespan, window_peak,
                                     self._alloc_sensitive)
                if hit is not None:
                    cycles, skipped, cp_cycles = hit
                    if cp_cycles is not None:
                        checkpoint_cycles = cp_cycles
                    return ScheduleResult(
                        cycles=cycles, records=records,
                        extrapolated_iterations=skipped,
                        checkpoint_cycles=checkpoint_cycles)
                if detector.captured:
                    window_peak = 0
                    self._alloc_sensitive = False
                    ports.reset_floors()

        # Drain the front end: even pure-nop streams take alloc time.
        makespan = max(makespan,
                       (slots_used + issue_width - 1)
                       // issue_width + stall_cycles)
        return ScheduleResult(cycles=makespan, records=records,
                              checkpoint_cycles=checkpoint_cycles)

    # ------------------------------------------------------------------

    def _slot_plan(self, instr: Instruction) -> tuple:
        """Static per-slot facts: dependency bases, move-elimination
        source, and the division-free decomposition."""
        mem = instr.memory_operand
        addr_bases = [r.base for r in mem.registers] if mem else []
        if instr.mnemonic in ("push", "pop"):
            addr_bases.append("rsp")
        reads = instr.regs_read \
            if self.decomposer.recognize_zero_idioms \
            else instr.regs_read_raw
        data_bases = [r.base for r in reads
                      if r.base not in addr_bases]
        if instr.info.reads_flags:
            data_bases.append("__flags__")
        write_bases = [r.base for r in instr.regs_written]
        if instr.info.writes_flags:
            write_bases.append("__flags__")
        elim_src = next((op.base for op in instr.operands[1:]
                         if is_reg(op)), None)
        return (instr, tuple(addr_bases), tuple(data_bases),
                tuple(write_bases), elim_src,
                self.decomposer.decompose(instr, None))

    def _schedule_instruction(self, plan: tuple,
                              decomposed: DecomposedInstruction,
                              ann: Optional[InstrAnnotation],
                              alloc: int,
                              ports: _PortFile,
                              reg_ready: Dict[str, int],
                              stores: List[Tuple[int, int, int]],
                              records: Optional[List[UopRecord]],
                              index: int, slot: int) -> int:
        desc = self.desc
        instr, addr_bases, data_bases, write_bases, elim_src, _ = plan
        reg_get = reg_ready.get

        # Rename-stage instructions: no execution at all.  Their
        # finish *is* the allocation clock, so they mark the window
        # alloc-sensitive (harmless unless the steady state advances
        # faster than the front end).
        if decomposed.is_zero_idiom:
            self._alloc_sensitive = True
            for base in write_bases:
                reg_ready[base] = alloc
            if records is not None:
                records.append(UopRecord(index, slot, instr.mnemonic,
                                         "eliminated", None, alloc, alloc))
            return alloc
        if decomposed.is_eliminated_move:
            src_ready = reg_get(elim_src, 0) if elim_src is not None else 0
            value_ready = max(alloc, src_ready)
            if value_ready == alloc:
                self._alloc_sensitive = True
            for base in write_bases:
                reg_ready[base] = value_ready
            if records is not None:
                records.append(UopRecord(index, slot, instr.mnemonic,
                                         "eliminated", None, alloc,
                                         value_ready))
            return value_ready
        if not decomposed.uops:  # plain nop
            self._alloc_sensitive = True
            return alloc

        addr_ready = alloc
        for base in addr_bases:
            ready = reg_get(base, 0)
            if ready > addr_ready:
                addr_ready = ready
        data_ready = alloc
        for base in data_bases:
            ready = reg_get(base, 0)
            if ready > data_ready:
                data_ready = ready

        load_result = None
        compute_result = None
        finish_max = alloc
        if ann is not None:
            reads = list(ann.read_accesses) if ann.read_accesses else None
            writes = ann.write_accesses
        else:
            reads = None
            writes = ()
        forwarding = self.model_memory_dependencies

        for uop in decomposed.uops:
            if uop.kind == "load":
                lower = addr_ready
            elif uop.kind == "load_op":
                # Un-split load-op (llvm-mca policy): waits for all.
                lower = max(addr_ready, data_ready)
            elif uop.kind == "store_addr":
                lower = addr_ready
            elif uop.kind == "store_data":
                lower = compute_result if compute_result is not None \
                    else data_ready
            else:  # compute
                lower = data_ready
                if load_result is not None and load_result > lower:
                    lower = load_result

            dispatch, port = self._dispatch(ports, uop, lower, alloc)
            latency = uop.latency
            if ann and ann.subnormal and uop.kind in ("compute", "load_op"):
                latency += desc.subnormal_penalty
            finish = dispatch + latency

            if uop.kind in ("load", "load_op"):
                if reads:
                    finish += reads[0][2]  # miss/split penalty
                    if forwarding and stores:
                        finish = self._apply_forwarding(finish, reads,
                                                        stores, dispatch)
                    reads.pop(0)
                load_result = finish
                if uop.kind == "load_op":
                    compute_result = finish
            elif uop.kind == "compute":
                compute_result = finish
            elif uop.kind == "store_data":
                for address, width in writes:
                    stores.append((address, width, finish))
                del stores[:-self.STORE_WINDOW]

            if finish > finish_max:
                finish_max = finish
            if records is not None:
                records.append(UopRecord(index, slot, instr.mnemonic,
                                         uop.kind, port, dispatch, finish))

        result_ready = compute_result if compute_result is not None \
            else (load_result if load_result is not None else finish_max)
        for base in write_bases:
            reg_ready[base] = result_ready
        return finish_max

    def _apply_forwarding(self, finish: int, reads, stores,
                          dispatch: int) -> int:
        """Store-to-load forwarding / memory-dependence stalls."""
        if not (self.model_memory_dependencies and reads and stores):
            return finish
        address, width, _penalty = reads[0]
        lo, hi = address, address + width
        for s_addr, s_width, s_ready in reversed(stores):
            s_lo, s_hi = s_addr, s_addr + s_width
            if hi <= s_lo or lo >= s_hi:
                continue  # disjoint
            if s_lo <= lo and hi <= s_hi:
                # Fully forwarded from the store buffer.
                return max(finish,
                           s_ready + self.desc.store_forward_latency)
            # Partial overlap: the load replays from the cache after
            # the store commits — an expensive stall.
            return max(finish, s_ready + self.desc.store_forward_latency
                       + 10)
        return finish

    def _dispatch(self, ports: _PortFile, uop: Uop, lower: int,
                  alloc: int) -> Tuple[int, Optional[int]]:
        uop_ports = uop.ports
        if not uop_ports:
            if lower == alloc:
                self._alloc_sensitive = True
            return lower, None
        # A candidate probe is alloc-sensitive when it starts *at* the
        # allocation clock and is not covered by state (a reservation
        # or the dense-occupancy floor reaching past the clock) — only
        # then could a different clock value have produced a different
        # cycle, so only then does extrapolating a faster-than-frontend
        # steady state become unsound.  Unchosen candidates count too:
        # they feed the tie-break.  (The probe reads only state that
        # ``reserve`` — which runs after candidate selection — can
        # change, so checking every candidate up front is equivalent
        # to the interleaved walk.)
        occupancy = uop.occupancy
        if lower == alloc and not self._alloc_sensitive:
            reserved_until = ports._reserved_until
            dense = ports._dense
            for port in uop_ports:
                if reserved_until[port] <= alloc \
                        and dense[port] <= alloc:
                    self._alloc_sensitive = True
                    break
        if len(uop_ports) == 1:
            port = uop_ports[0]
            cycle = ports.earliest_free(port, lower, occupancy)
            ports.reserve(port, cycle, occupancy)
            return cycle, port
        earliest_free = ports.earliest_free
        counts = ports.counts
        best_cycle = None
        best_port = None
        for port in uop_ports:
            cycle = earliest_free(port, lower, occupancy)
            if best_cycle is None or cycle < best_cycle or \
                    (cycle == best_cycle
                     and counts[port] < counts[best_port]):
                best_cycle, best_port = cycle, port
        ports.reserve(best_port, best_cycle, occupancy)
        return best_cycle, best_port
