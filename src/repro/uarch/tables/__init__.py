"""Per-microarchitecture descriptors and ground-truth timing tables."""

from repro.uarch.tables.haswell import (DIV_TABLE as HASWELL_DIV,
                                        HASWELL, TABLE as HASWELL_TABLE)
from repro.uarch.tables.ivybridge import (DIV_TABLE as IVYBRIDGE_DIV,
                                          IVYBRIDGE,
                                          TABLE as IVYBRIDGE_TABLE)
from repro.uarch.tables.skylake import (DIV_TABLE as SKYLAKE_DIV,
                                        SKYLAKE, TABLE as SKYLAKE_TABLE)

#: name -> (descriptor, timing table, division table)
MICROARCHITECTURES = {
    "ivybridge": (IVYBRIDGE, IVYBRIDGE_TABLE, IVYBRIDGE_DIV),
    "haswell": (HASWELL, HASWELL_TABLE, HASWELL_DIV),
    "skylake": (SKYLAKE, SKYLAKE_TABLE, SKYLAKE_DIV),
}


def get_uarch(name: str):
    """Return (descriptor, table, div_table) for a uarch name."""
    try:
        return MICROARCHITECTURES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown microarchitecture {name!r}; "
            f"choose from {sorted(MICROARCHITECTURES)}") from None
