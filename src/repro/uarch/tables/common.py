"""Timing-table building blocks shared by all microarchitectures.

A :class:`TimingEntry` lists the *compute* micro-ops of one timing
class (load/store micro-ops are synthesised separately by the
decomposer from the operand shapes).  Each :class:`UopSpec` names the
ports that can execute the micro-op, its result latency, and how many
cycles it occupies the port (``occupancy > 1`` models unpipelined
units such as dividers — the source of the paper's div case study).

Port-combination strings ("p0156", "p23", ...) in the Abel & Reineke
notation used by the paper's classifier are derived from the port
tuples via :func:`port_combo_name`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class UopSpec:
    """One compute micro-op of a timing class."""

    ports: Tuple[int, ...]
    latency: int
    occupancy: int = 1


@dataclass(frozen=True)
class TimingEntry:
    """All compute micro-ops of one timing class."""

    uops: Tuple[UopSpec, ...]

    @property
    def latency(self) -> int:
        return max((u.latency for u in self.uops), default=0)


def entry(*uops: UopSpec) -> TimingEntry:
    return TimingEntry(tuple(uops))


def u(ports: Tuple[int, ...], latency: int, occupancy: int = 1) -> UopSpec:
    return UopSpec(tuple(sorted(ports)), latency, occupancy)


def port_combo_name(ports: Tuple[int, ...]) -> str:
    """Abel & Reineke-style combo label, e.g. ``(0,1,5,6) -> "p0156"``."""
    if not ports:
        return "none"
    return "p" + "".join(str(p) for p in sorted(ports))


#: Division timing classes, keyed by (operand bits, high-half-zero).
#: The 64-bit full-width divide is the slow path the paper's case study
#: shows IACA/llvm-mca confusing with the 32-bit form.
DivTable = Dict[Tuple[int, bool], UopSpec]


def check_table(table: Dict[str, TimingEntry],
                required: Tuple[str, ...]) -> None:
    """Validate a uarch table covers every timing class (fail fast)."""
    missing = [key for key in required if key not in table]
    if missing:
        raise KeyError(f"timing table missing classes: {missing}")


#: Every timing class the decomposer can emit.
TIMING_CLASSES: Tuple[str, ...] = (
    "int_alu", "mov", "mov_imm", "movzx", "lea_simple", "lea_complex",
    "shift_imm", "shift_cl", "shift_double", "bitscan", "int_mul",
    "int_mul_wide", "cmov", "setcc", "widen", "xchg",
    "vec_logic", "vec_int", "vec_imul", "vec_shift",
    "shuffle", "shuffle_256", "lane_xfer", "vec_mov", "vec_xfer",
    "movmsk", "fp_add", "fp_mul", "fma",
    "fp_div_f32", "fp_div_f32_256", "fp_div_f64", "fp_div_f64_256",
    "fp_sqrt_f32", "fp_sqrt_f64", "fp_rcp", "fp_cvt", "fp_cmp",
    "fp_comi", "hadd", "fp_round",
)
