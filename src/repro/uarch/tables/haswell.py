"""Haswell (HSW) ground-truth timing tables.

Port layout: 0/1/5/6 integer ALU, 0/1 FP mul+FMA, 1 FP add, 5 shuffle,
6 shifts+branch, 2/3 load AGU, 7 store AGU, 4 store data — the
configuration under which the paper reports its 13 port combinations.

Latency/occupancy values follow the public measurements (Agner Fog /
uops.info) closely enough to reproduce the paper's effects: the
unpipelined divider, the 5-cycle FP multiply, the 2-uop ``cmov``, the
cross-lane shuffle penalty.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.uarch.descriptor import CacheGeometry, UarchDescriptor
from repro.uarch.tables.common import (DivTable, TimingEntry, check_table,
                                       entry, u, TIMING_CLASSES)

HASWELL = UarchDescriptor(
    name="haswell",
    ports=(0, 1, 2, 3, 4, 5, 6, 7),
    issue_width=4,
    load_ports=(2, 3),
    store_addr_ports=(2, 3, 7),
    store_data_ports=(4,),
    l1d=CacheGeometry(32 * 1024, 64, 8),
    l1i=CacheGeometry(32 * 1024, 64, 8),
    load_latency=4,
    indexed_load_extra=1,
    store_forward_latency=5,
    move_elimination=True,
    has_avx2=True,
    has_fma=True,
    unlaminates_indexed=False,
)

_ALU = (0, 1, 5, 6)
_SHIFT = (0, 6)
_VLOGIC = (0, 1, 5)
_VINT = (1, 5)

TABLE: Dict[str, TimingEntry] = {
    "int_alu": entry(u(_ALU, 1)),
    "mov": entry(u(_ALU, 1)),
    "mov_imm": entry(u(_ALU, 1)),
    "movzx": entry(u(_ALU, 1)),
    "lea_simple": entry(u((1, 5), 1)),
    "lea_complex": entry(u((1,), 3)),
    "shift_imm": entry(u(_SHIFT, 1)),
    "shift_cl": entry(u(_SHIFT, 1), u(_SHIFT, 1)),
    "shift_double": entry(u((1,), 3)),
    "bitscan": entry(u((1,), 3)),
    "int_mul": entry(u((1,), 3)),
    "int_mul_wide": entry(u((1,), 4), u(_ALU, 1)),
    "cmov": entry(u(_ALU, 1), u(_ALU, 1)),
    "setcc": entry(u(_SHIFT, 1)),
    "widen": entry(u(_SHIFT, 1)),
    "xchg": entry(u(_ALU, 1), u(_ALU, 1), u(_ALU, 1)),
    "vec_logic": entry(u(_VLOGIC, 1)),
    "vec_int": entry(u(_VINT, 1)),
    "vec_imul": entry(u((0,), 10, occupancy=2)),
    "vec_shift": entry(u((0,), 1)),
    "shuffle": entry(u((5,), 1)),
    "shuffle_256": entry(u((5,), 1)),
    "lane_xfer": entry(u((5,), 3)),
    "vec_mov": entry(u(_VLOGIC, 1)),
    "vec_xfer": entry(u((0,), 2)),
    "movmsk": entry(u((0,), 3)),
    "fp_add": entry(u((1,), 3)),
    "fp_mul": entry(u((0, 1), 5)),
    "fma": entry(u((0, 1), 5)),
    "fp_div_f32": entry(u((0,), 13, occupancy=7)),
    "fp_div_f32_256": entry(u((0,), 21, occupancy=14)),
    "fp_div_f64": entry(u((0,), 20, occupancy=14)),
    "fp_div_f64_256": entry(u((0,), 35, occupancy=28)),
    "fp_sqrt_f32": entry(u((0,), 19, occupancy=13)),
    "fp_sqrt_f64": entry(u((0,), 27, occupancy=20)),
    "fp_rcp": entry(u((0,), 5)),
    "fp_cvt": entry(u((1,), 4)),
    "fp_cmp": entry(u((1,), 3)),
    "fp_comi": entry(u((1,), 2)),
    "hadd": entry(u((5,), 1), u((5,), 1), u((1,), 3)),
    "fp_round": entry(u((1,), 6)),
}

check_table(TABLE, TIMING_CLASSES)

#: Integer division: (bits, high-half-zero) -> divider micro-op.
DIV_TABLE: DivTable = {
    (8, True): u((0,), 17, occupancy=17),
    (8, False): u((0,), 17, occupancy=17),
    (16, True): u((0,), 19, occupancy=19),
    (16, False): u((0,), 21, occupancy=21),
    (32, True): u((0,), 22, occupancy=22),
    (32, False): u((0,), 25, occupancy=25),
    (64, True): u((0,), 36, occupancy=36),
    (64, False): u((0,), 90, occupancy=90),
}
