"""Ivy Bridge (IVB) ground-truth timing tables.

Six-port core: 0/1/5 execution, 2/3 combined load + store-address AGUs,
4 store data.  No port 6/7, no AVX2, no FMA (the paper excludes AVX2
blocks from Ivy Bridge validation), micro-fused indexed loads
un-laminate at issue, and the divider is slower than Haswell's.
"""

from __future__ import annotations

from typing import Dict

from repro.uarch.descriptor import CacheGeometry, UarchDescriptor
from repro.uarch.tables.common import (DivTable, TimingEntry, check_table,
                                       entry, u, TIMING_CLASSES)

IVYBRIDGE = UarchDescriptor(
    name="ivybridge",
    ports=(0, 1, 2, 3, 4, 5),
    issue_width=4,
    load_ports=(2, 3),
    store_addr_ports=(2, 3),
    store_data_ports=(4,),
    l1d=CacheGeometry(32 * 1024, 64, 8),
    l1i=CacheGeometry(32 * 1024, 64, 8),
    load_latency=4,
    indexed_load_extra=1,
    store_forward_latency=6,
    move_elimination=True,  # introduced with Ivy Bridge (GPR only IRL)
    has_avx2=False,
    has_fma=False,
    unlaminates_indexed=True,
)

_ALU = (0, 1, 5)
_SHIFT = (0, 5)

TABLE: Dict[str, TimingEntry] = {
    "int_alu": entry(u(_ALU, 1)),
    "mov": entry(u(_ALU, 1)),
    "mov_imm": entry(u(_ALU, 1)),
    "movzx": entry(u(_ALU, 1)),
    "lea_simple": entry(u((0, 1), 1)),
    "lea_complex": entry(u((1,), 3)),
    "shift_imm": entry(u(_SHIFT, 1)),
    "shift_cl": entry(u(_SHIFT, 1), u(_SHIFT, 1)),
    "shift_double": entry(u((1,), 4)),
    "bitscan": entry(u((1,), 3)),
    "int_mul": entry(u((1,), 3)),
    "int_mul_wide": entry(u((1,), 4), u(_ALU, 1)),
    "cmov": entry(u(_ALU, 1), u(_ALU, 1)),
    "setcc": entry(u(_SHIFT, 1)),
    "widen": entry(u(_SHIFT, 1)),
    "xchg": entry(u(_ALU, 1), u(_ALU, 1), u(_ALU, 1)),
    "vec_logic": entry(u((0, 1, 5), 1)),
    "vec_int": entry(u((1, 5), 1)),
    "vec_imul": entry(u((0,), 10, occupancy=2)),
    "vec_shift": entry(u((0,), 1)),
    "shuffle": entry(u((5,), 1)),
    "shuffle_256": entry(u((5,), 2)),
    "lane_xfer": entry(u((5,), 3)),
    "vec_mov": entry(u((0, 1, 5), 1)),
    "vec_xfer": entry(u((0,), 2)),
    "movmsk": entry(u((0,), 3)),
    "fp_add": entry(u((1,), 3)),
    "fp_mul": entry(u((0,), 5)),
    "fma": entry(u((0,), 5)),  # unreachable: IVB rejects FMA blocks
    "fp_div_f32": entry(u((0,), 13, occupancy=7)),
    "fp_div_f32_256": entry(u((0,), 21, occupancy=14)),
    "fp_div_f64": entry(u((0,), 22, occupancy=16)),
    "fp_div_f64_256": entry(u((0,), 35, occupancy=28)),
    "fp_sqrt_f32": entry(u((0,), 19, occupancy=14)),
    "fp_sqrt_f64": entry(u((0,), 29, occupancy=22)),
    "fp_rcp": entry(u((0,), 5)),
    "fp_cvt": entry(u((1,), 4)),
    "fp_cmp": entry(u((1,), 3)),
    "fp_comi": entry(u((1,), 2)),
    "hadd": entry(u((5,), 1), u((5,), 1), u((1,), 3)),
    "fp_round": entry(u((1,), 6)),
}

check_table(TABLE, TIMING_CLASSES)

DIV_TABLE: DivTable = {
    (8, True): u((0,), 19, occupancy=19),
    (8, False): u((0,), 19, occupancy=19),
    (16, True): u((0,), 21, occupancy=21),
    (16, False): u((0,), 23, occupancy=23),
    (32, True): u((0,), 26, occupancy=26),
    (32, False): u((0,), 28, occupancy=28),
    (64, True): u((0,), 40, occupancy=40),
    (64, False): u((0,), 92, occupancy=92),
}
