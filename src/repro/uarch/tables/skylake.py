"""Skylake (SKL) ground-truth timing tables.

Same eight-port layout as Haswell but with the unified 4-cycle FP
add/mul/FMA on ports 0/1, single-uop ``cmov``, a much faster radix
divider, and integer vector ops spread over ports 0/1/5.  These are the
behaviours the paper notes LLVM's (then-new) Skylake scheduling model
lagged behind — our llvm-mca analogue inherits stale Haswell-like
parameters for exactly these classes.
"""

from __future__ import annotations

from typing import Dict

from repro.uarch.descriptor import CacheGeometry, UarchDescriptor
from repro.uarch.tables.common import (DivTable, TimingEntry, check_table,
                                       entry, u, TIMING_CLASSES)

SKYLAKE = UarchDescriptor(
    name="skylake",
    ports=(0, 1, 2, 3, 4, 5, 6, 7),
    issue_width=4,
    load_ports=(2, 3),
    store_addr_ports=(2, 3, 7),
    store_data_ports=(4,),
    l1d=CacheGeometry(32 * 1024, 64, 8),
    l1i=CacheGeometry(32 * 1024, 64, 8),
    load_latency=4,
    indexed_load_extra=1,
    store_forward_latency=4,
    move_elimination=True,
    has_avx2=True,
    has_fma=True,
    unlaminates_indexed=False,
)

_ALU = (0, 1, 5, 6)
_SHIFT = (0, 6)
_VEC = (0, 1, 5)

TABLE: Dict[str, TimingEntry] = {
    "int_alu": entry(u(_ALU, 1)),
    "mov": entry(u(_ALU, 1)),
    "mov_imm": entry(u(_ALU, 1)),
    "movzx": entry(u(_ALU, 1)),
    "lea_simple": entry(u((1, 5), 1)),
    "lea_complex": entry(u((1,), 3)),
    "shift_imm": entry(u(_SHIFT, 1)),
    "shift_cl": entry(u(_SHIFT, 1), u(_SHIFT, 1)),
    "shift_double": entry(u((1,), 3)),
    "bitscan": entry(u((1,), 3)),
    "int_mul": entry(u((1,), 3)),
    "int_mul_wide": entry(u((1,), 4), u(_ALU, 1)),
    "cmov": entry(u(_ALU, 1)),  # single uop on Skylake
    "setcc": entry(u(_SHIFT, 1)),
    "widen": entry(u(_SHIFT, 1)),
    "xchg": entry(u(_ALU, 1), u(_ALU, 1), u(_ALU, 1)),
    "vec_logic": entry(u(_VEC, 1)),
    "vec_int": entry(u(_VEC, 1)),
    "vec_imul": entry(u((0, 1), 10, occupancy=2)),
    "vec_shift": entry(u((0, 1), 1)),
    "shuffle": entry(u((5,), 1)),
    "shuffle_256": entry(u((5,), 1)),
    "lane_xfer": entry(u((5,), 3)),
    "vec_mov": entry(u(_VEC, 1)),
    "vec_xfer": entry(u((0,), 2)),
    "movmsk": entry(u((0,), 2)),
    "fp_add": entry(u((0, 1), 4)),
    "fp_mul": entry(u((0, 1), 4)),
    "fma": entry(u((0, 1), 4)),
    "fp_div_f32": entry(u((0,), 11, occupancy=3)),
    "fp_div_f32_256": entry(u((0,), 11, occupancy=5)),
    "fp_div_f64": entry(u((0,), 14, occupancy=4)),
    "fp_div_f64_256": entry(u((0,), 14, occupancy=8)),
    "fp_sqrt_f32": entry(u((0,), 12, occupancy=3)),
    "fp_sqrt_f64": entry(u((0,), 18, occupancy=6)),
    "fp_rcp": entry(u((0,), 4)),
    "fp_cvt": entry(u((0, 1), 4)),
    "fp_cmp": entry(u((0, 1), 4)),
    "fp_comi": entry(u((0,), 2)),
    "hadd": entry(u((5,), 1), u((5,), 1), u((0, 1), 4)),
    "fp_round": entry(u((0, 1), 8)),
}

check_table(TABLE, TIMING_CLASSES)

DIV_TABLE: DivTable = {
    (8, True): u((0,), 15, occupancy=15),
    (8, False): u((0,), 15, occupancy=15),
    (16, True): u((0,), 17, occupancy=17),
    (16, False): u((0,), 19, occupancy=19),
    (32, True): u((0,), 21, occupancy=21),
    (32, False): u((0,), 24, occupancy=24),
    (64, True): u((0,), 32, occupancy=32),
    (64, False): u((0,), 85, occupancy=85),
}
