"""Micro-op decomposition.

Turns one :class:`Instruction` into the micro-ops the scheduler prices:
compute micro-ops from the timing tables, plus synthesised load /
store-address / store-data micro-ops from the operand shapes.  Fusion
and idiom policies are parameters because they are exactly what
distinguishes the ground-truth machine from each cost model:

* ``recognize_zero_idioms`` — hardware and IACA break ``xor r, r``
  dependencies and execute nothing; llvm-mca and OSACA do not (the
  paper's second case study).
* ``split_load_op`` — hardware and IACA schedule the load micro-op of
  ``xor -1(%rdi), %al`` independently of its ALU micro-op; llvm-mca
  treats the pair as one unit, delaying the load behind the ALU
  operand (the paper's third case study).
* ``move_elimination`` — reg-reg moves executed at rename.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import UnsupportedInstructionError
from repro.isa.instruction import Instruction
from repro.isa.operands import is_imm, is_mem, is_reg
from repro.telemetry import core as telemetry
from repro.uarch.descriptor import UarchDescriptor
from repro.uarch.tables.common import TimingEntry, UopSpec, port_combo_name


@dataclass
class Uop:
    """One schedulable micro-op."""

    ports: Tuple[int, ...]
    latency: int
    occupancy: int = 1
    kind: str = "compute"  # compute | load | store_addr | store_data
    #: True when this uop is fused with the previous one in the
    #: front-end (consumes no extra allocation slot).
    fused_with_prev: bool = False

    @property
    def combo(self) -> str:
        return port_combo_name(self.ports)


@dataclass
class DecomposedInstruction:
    """Micro-ops plus front-end accounting for one instruction."""

    instr: Instruction
    uops: List[Uop] = field(default_factory=list)
    #: Fused-domain allocation slots consumed (≥1: even eliminated
    #: moves and zero idioms pass through rename).
    fused_slots: int = 1
    #: Dependency-breaking: destination becomes ready immediately.
    is_zero_idiom: bool = False
    #: Register move executed at rename (dst aliases src's producer).
    is_eliminated_move: bool = False

    @property
    def n_uops(self) -> int:
        return len(self.uops)


def timing_class(instr: Instruction) -> str:
    """Map an instruction to its timing-table class."""
    info = instr.info
    group = info.group
    if group == "int_alu":
        return "int_alu"
    if group == "mov":
        return "mov_imm" if any(is_imm(op) for op in instr.operands) \
            else "mov"
    if group == "movzx":
        return "movzx"
    if group == "lea":
        mem = instr.operands[1]
        complex_addr = mem.index is not None and \
            (mem.base is not None and mem.disp != 0)
        return "lea_complex" if complex_addr else "lea_simple"
    if group == "shift":
        if len(instr.operands) == 2 and is_reg(instr.operands[1]):
            return "shift_cl"
        return "shift_imm"
    if group == "shift_double":
        return "shift_double"
    if group == "bitscan":
        return "bitscan"
    if group == "int_mul":
        return "int_mul_wide" if len(instr.operands) == 1 else "int_mul"
    if group == "int_div":
        return "int_div"
    if group == "cmov":
        return "cmov"
    if group == "setcc":
        return "setcc"
    if group == "widen":
        return "widen"
    if group == "xchg":
        return "xchg"
    if group in ("push", "pop", "nop", "vzero"):
        return group
    if group == "vec_logic":
        return "vec_logic"
    if group == "vec_int":
        return "vec_int"
    if group == "vec_imul":
        return "vec_imul"
    if group == "vec_shift":
        return "vec_shift"
    if group == "shuffle":
        wide = any(is_reg(op) and op.is_vector and op.width == 256
                   for op in instr.operands)
        return "shuffle_256" if wide else "shuffle"
    if group == "lane_xfer":
        return "lane_xfer"
    if group == "vec_mov":
        return "vec_mov"
    if group == "vec_xfer":
        return "movmsk" if instr.info.semantic == "movmsk" else "vec_xfer"
    if group == "fp_add":
        return "fp_add"
    if group == "fp_mul":
        return "fp_mul"
    if group == "fma":
        return "fma"
    if group == "fp_div":
        wide = any(is_reg(op) and op.is_vector and op.width == 256
                   for op in instr.operands)
        suffix = "_256" if wide else ""
        return f"fp_div_{info.fp}{suffix}"
    if group == "fp_sqrt":
        return f"fp_sqrt_{info.fp}"
    if group == "fp_rcp":
        return "fp_rcp"
    if group == "fp_cvt":
        return "fp_cvt"
    if group == "fp_cmp":
        return "fp_cmp"
    if group == "fp_comi":
        return "fp_comi"
    if group == "fp_round":
        return "fp_round"
    if group == "hadd" or info.semantic == "hadd":
        return "hadd"
    telemetry.count("uops.unsupported_mnemonic")
    raise UnsupportedInstructionError(
        f"no timing class for {instr.mnemonic} ({group})")


def _is_reg_move(instr: Instruction) -> bool:
    """Reg-to-reg moves eligible for move elimination."""
    if instr.mnemonic not in ("mov", "movaps", "movapd", "movdqa", "movups",
                              "vmovaps", "vmovapd", "vmovdqa", "vmovups"):
        return False
    if len(instr.operands) != 2:
        return False
    dst, src = instr.operands
    if not (is_reg(dst) and is_reg(src)):
        return False
    if dst.kind == "gpr":
        return dst.width >= 32 and src.width >= 32
    return True


class Decomposer:
    """Instruction → micro-ops under a given policy + timing table."""

    def __init__(self, desc: UarchDescriptor,
                 table: Dict[str, TimingEntry],
                 div_table: Dict[Tuple[int, bool], UopSpec],
                 *,
                 recognize_zero_idioms: bool = True,
                 split_load_op: bool = True,
                 move_elimination: Optional[bool] = None):
        self.desc = desc
        self.table = table
        self.div_table = div_table
        self.recognize_zero_idioms = recognize_zero_idioms
        self.split_load_op = split_load_op
        self.move_elimination = desc.move_elimination \
            if move_elimination is None else move_elimination
        self._cache: Dict[Tuple, DecomposedInstruction] = {}

    # -- public API --------------------------------------------------------

    def decompose(self, instr: Instruction,
                  div_class: Optional[Tuple[int, bool]] = None
                  ) -> DecomposedInstruction:
        """Decompose one instruction (cached per static instruction)."""
        key = (instr, div_class)
        hit = self._cache.get(key)
        if hit is None:
            hit = self._decompose_uncached(instr, div_class)
            self._cache[key] = hit
        return hit

    # -- internals ----------------------------------------------------------

    def _compute_uops(self, instr: Instruction,
                      div_class: Optional[Tuple[int, bool]]) -> List[Uop]:
        if instr.info.group == "int_div":
            spec = self.div_table[div_class or (instr.operand_width * 8,
                                                True)]
            return [Uop(spec.ports, spec.latency, spec.occupancy),
                    Uop(self.table["int_alu"].uops[0].ports, 1)]
        cls = timing_class(instr)
        if cls in ("push", "pop", "nop", "vzero"):
            if cls == "vzero":
                return [Uop(self.table["vec_logic"].uops[0].ports, 1)]
            return []
        spec_entry = self.table[cls]
        return [Uop(spec.ports, spec.latency, spec.occupancy)
                for spec in spec_entry.uops]

    @staticmethod
    def _lacks_forwarding(instr: Instruction) -> bool:
        """Forms whose load-op pair llvm-mca schedules as one unit.

        LLVM's scheduling models carry ``ReadAdvance`` entries for the
        common 32/64-bit load-ALU forms (the data operand is only
        needed at the ALU stage), but the narrow 8/16-bit forms — like
        the gzip CRC block's ``xor -1(%rdi), %al`` — and
        read-modify-write memory destinations lacked them, so the
        whole unit waits for every operand (the paper's case study 3).
        """
        if instr.stores_memory:
            return True
        return instr.operand_width <= 2

    def _load_uop(self, instr: Instruction) -> Uop:
        mem = instr.memory_operand
        latency = self.desc.load_latency
        if mem is not None and mem.index is not None:
            latency += self.desc.indexed_load_extra
        return Uop(self.desc.load_ports, latency, kind="load")

    def _decompose_uncached(self, instr: Instruction,
                            div_class) -> DecomposedInstruction:
        info = instr.info
        if info.group == "nop":
            return DecomposedInstruction(instr, uops=[], fused_slots=1)
        if self.recognize_zero_idioms and instr.is_zero_idiom:
            return DecomposedInstruction(instr, uops=[], fused_slots=1,
                                         is_zero_idiom=True)
        if self.move_elimination and _is_reg_move(instr):
            return DecomposedInstruction(instr, uops=[], fused_slots=1,
                                         is_eliminated_move=True)

        uops: List[Uop] = []
        loads = instr.loads_memory or instr.mnemonic == "pop"
        stores = instr.stores_memory or instr.mnemonic == "push"
        compute = self._compute_uops(instr, div_class)
        if stores and not loads and not info.reads_dst:
            # A pure store (mov-style) has no execution micro-op: the
            # value travels on the store-data uop.
            compute = []

        if loads:
            load = self._load_uop(instr)
            fuse = (not self.split_load_op and compute
                    and self._lacks_forwarding(instr))
            if fuse:
                # Fold the load into the first compute uop: one unit
                # that waits for *all* inputs, with summed latency.
                first = compute[0]
                compute[0] = Uop(first.ports,
                                 first.latency + load.latency,
                                 first.occupancy,
                                 kind="load_op")
            else:
                uops.append(load)
        uops.extend(compute)
        if stores:
            uops.append(Uop(self.desc.store_addr_ports, 1,
                            kind="store_addr"))
            uops.append(Uop(self.desc.store_data_ports, 1,
                            kind="store_data", fused_with_prev=True))

        # Fused-domain slot accounting.
        mem = instr.memory_operand
        indexed = mem is not None and mem.index is not None
        slots = max(1, len(compute))
        if loads and self.split_load_op and compute:
            if self.desc.unlaminates_indexed and indexed:
                slots += 1  # load-op un-laminates on this core
            # else: micro-fused load-op — no extra slot
        elif loads and not compute:
            slots = max(slots, 1)
        if stores:
            if compute or loads:
                slots += 1  # fused store-address + store-data pair
            else:
                slots = 1  # a pure store is one fused micro-op
        return DecomposedInstruction(instr, uops=uops, fused_slots=slots)
