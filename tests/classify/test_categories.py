"""Port mapping and block categorisation."""

import pytest

from repro.classify import (CATEGORY_LABELS, PortMapper,
                            category_shares_by_app, classify_blocks)
from repro.corpus import build_corpus
from repro.isa.parser import parse_block, parse_instruction


class TestPortMapper:
    def test_alu_combo(self):
        mapper = PortMapper("haswell")
        combos = mapper.instruction_combos(
            parse_instruction("add %rbx, %rax"))
        assert combos == ("p0156",)

    def test_load_op_combos(self):
        mapper = PortMapper("haswell")
        combos = mapper.instruction_combos(
            parse_instruction("add (%rdi), %rax"))
        assert combos == ("p23", "p0156")

    def test_store_combos(self):
        mapper = PortMapper("haswell")
        combos = mapper.instruction_combos(
            parse_instruction("mov %rax, (%rdi)"))
        assert combos == ("p237", "p4")

    def test_rename_only_instructions(self):
        mapper = PortMapper("haswell")
        assert mapper.instruction_combos(
            parse_instruction("xor %eax, %eax")) == ("none",)

    def test_unsupported_tolerated(self):
        mapper = PortMapper("haswell")
        assert mapper.instruction_combos(
            parse_instruction("cpuid")) == ("none",)

    def test_block_bag(self):
        mapper = PortMapper("haswell")
        block = parse_block("add %rbx, %rax\nmov %rcx, (%rdi)")
        assert mapper.block_combos(block) == ["p0156", "p237", "p4"]

    def test_vocabulary_close_to_papers_13(self):
        corpus = build_corpus(scale=0.001)
        mapper = PortMapper("haswell")
        vocab = mapper.vocabulary(corpus.blocks)
        assert 10 <= len(vocab) <= 14  # paper: 13 combos on Haswell


class TestClassification:
    @pytest.fixture(scope="class")
    def corpus(self):
        return build_corpus(scale=0.002, seed=1)

    @pytest.fixture(scope="class")
    def result(self, corpus):
        return classify_blocks(corpus.blocks)

    def test_every_block_categorised(self, corpus, result):
        assert len(result.categories) == len(corpus)
        assert set(result.categories) <= set(range(1, 7))

    def test_six_labels(self):
        assert len(CATEGORY_LABELS) == 6
        assert CATEGORY_LABELS[1] == "Purely vector instructions"

    def test_counts_sum(self, corpus, result):
        assert sum(result.counts().values()) == len(corpus)

    def test_load_category_is_large(self, result):
        """Paper Table IV: 'mostly loads' is the biggest category."""
        counts = result.counts()
        assert counts[6] >= max(counts[1], counts[2])

    def test_vector_categories_contain_vector_blocks(self, corpus,
                                                     result):
        from repro.models.residual import block_mix
        cat2 = [b for b, c in zip(corpus.blocks, result.categories)
                if c == 2]
        if cat2:
            mean_vec = sum(block_mix(b)["vector"] for b in cat2) \
                / len(cat2)
            assert mean_vec > 0.4

    def test_example_blocks_per_category(self, corpus, result):
        examples = result.example_blocks(corpus.blocks)
        assert examples
        for category, block in examples.items():
            assert result.categories[corpus.blocks.index(block)] \
                == category

    def test_app_shares_sum_to_one(self, corpus, result):
        shares = category_shares_by_app(corpus, result)
        for app, dist in shares.items():
            assert sum(dist.values()) == pytest.approx(1.0)

    def test_kernel_apps_are_vector_dominated(self, corpus, result):
        """Fig. 4's headline pattern."""
        shares = category_shares_by_app(corpus, result)
        for app in ("openblas", "tensorflow"):
            vec = shares[app][1] + shares[app][2]
            assert vec > 0.4, (app, shares[app])
        for app in ("sqlite", "llvm"):
            vec = shares[app][1] + shares[app][2]
            assert vec < 0.25, (app, shares[app])

    def test_deterministic(self, corpus):
        a = classify_blocks(corpus.blocks)
        b = classify_blocks(corpus.blocks)
        assert a.categories == b.categories
