"""Numpy LDA: recovers planted topic structure."""

import numpy as np
import pytest

from repro.classify.lda import LatentDirichletAllocation, LdaConfig


def planted_corpus(n_docs=300, seed=0):
    """Documents drawn from two disjoint topics."""
    rng = np.random.default_rng(seed)
    vocab = 10
    topic_a = np.zeros(vocab)
    topic_a[:5] = 0.2
    topic_b = np.zeros(vocab)
    topic_b[5:] = 0.2
    counts = np.zeros((n_docs, vocab))
    labels = []
    for d in range(n_docs):
        topic = topic_a if d % 2 == 0 else topic_b
        labels.append(d % 2)
        words = rng.choice(vocab, size=30, p=topic)
        for w in words:
            counts[d, w] += 1
    return counts, labels


class TestRecovery:
    def test_separates_planted_topics(self):
        counts, labels = planted_corpus()
        lda = LatentDirichletAllocation(LdaConfig(n_topics=2, seed=1))
        doc_topics = lda.fit_transform(counts)
        assignment = doc_topics.argmax(1)
        # All even docs in one cluster, all odd docs in the other.
        even = set(assignment[::2])
        odd = set(assignment[1::2])
        assert len(even) == 1 and len(odd) == 1 and even != odd

    def test_topic_word_distributions_disjoint(self):
        counts, _ = planted_corpus()
        lda = LatentDirichletAllocation(LdaConfig(n_topics=2, seed=1))
        lda.fit(counts)
        tw = lda.topic_word_
        top_words = {tuple(sorted(np.argsort(tw[k])[-5:]))
                     for k in range(2)}
        assert top_words == {(0, 1, 2, 3, 4), (5, 6, 7, 8, 9)}

    def test_doc_topics_are_distributions(self):
        counts, _ = planted_corpus(n_docs=50)
        lda = LatentDirichletAllocation(LdaConfig(n_topics=3))
        doc_topics = lda.fit_transform(counts)
        assert np.allclose(doc_topics.sum(1), 1.0)
        assert (doc_topics >= 0).all()

    def test_deterministic_given_seed(self):
        counts, _ = planted_corpus(n_docs=60)
        a = LatentDirichletAllocation(LdaConfig(seed=3)) \
            .fit_transform(counts)
        b = LatentDirichletAllocation(LdaConfig(seed=3)) \
            .fit_transform(counts)
        assert np.allclose(a, b)

    def test_paper_hyperparameters(self):
        config = LdaConfig()
        assert config.n_topics == 6
        assert config.alpha == pytest.approx(1 / 6)
        assert config.beta == pytest.approx(1 / 13)

    def test_transform_before_fit_raises(self):
        lda = LatentDirichletAllocation()
        with pytest.raises(RuntimeError):
            lda.transform(np.ones((2, 3)))
