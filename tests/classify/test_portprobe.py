"""Measurement-based port-mapping inference vs. ground truth."""

import pytest

from repro.classify.portprobe import BLOCKERS, PortProber
from repro.isa.parser import parse_instruction
from repro.uarch.tables import get_uarch
from repro.uarch.uops import Decomposer


@pytest.fixture(scope="module")
def prober():
    return PortProber("haswell")


def ground_truth_ports(text, uarch="haswell"):
    desc, table, div = get_uarch(uarch)
    instr = parse_instruction(text)
    decomposed = Decomposer(desc, table, div).decompose(instr)
    return decomposed.uops[0].ports


class TestBlockers:
    @pytest.mark.parametrize("uarch", ["ivybridge", "haswell",
                                       "skylake"])
    @pytest.mark.parametrize("port", sorted(BLOCKERS))
    def test_blockers_are_single_port_everywhere(self, uarch, port):
        for text in set(BLOCKERS[port]):
            assert ground_truth_ports(text, uarch) == (port,), \
                (uarch, text)

    def test_blockers_have_no_chains(self, prober):
        for port in BLOCKERS:
            instrs = prober._blocker_instrs(port)
            written = set()
            for instr in instrs[:len(set(BLOCKERS[port]))]:
                for reg in instr.regs_written:
                    written.add(reg.base)
            for instr in instrs:
                read = {r.base for r in instr.regs_read}
                assert not (read & written), (port, str(instr))


class TestInference:
    @pytest.mark.parametrize("text", [
        "pslld $2, %xmm12",
        "addss %xmm13, %xmm12",
        "pshufd $3, %xmm13, %xmm12",
        "mulps %xmm13, %xmm12",
        "paddd %xmm13, %xmm12",
        "xorps %xmm13, %xmm12",
        "imul %rbx, %rax",
        "add %rbx, %rax",
    ])
    def test_inferred_matches_ground_truth(self, prober, text):
        result = prober.infer(text)
        truth = ground_truth_ports(text)
        # Ports outside the blockable set {0,1,5} cannot be separated
        # (p0156 vs p015 needs a p6 blocker), so compare intersections.
        blockable = set(BLOCKERS)
        if set(truth) <= blockable:
            assert set(result.ports) == set(truth), result.evidence
        else:
            assert set(truth) <= set(result.ports)

    def test_evidence_recorded(self, prober):
        result = prober.infer("imul %rbx, %rax")
        assert len(result.evidence) >= 3
        sets = [s for s, _ in result.evidence]
        assert (1,) in sets

    def test_combo_notation(self, prober):
        result = prober.infer("pshufd $3, %xmm13, %xmm12")
        assert result.combo == "p5"

    def test_other_uarches(self):
        ivb = PortProber("ivybridge")
        assert set(ivb.infer("mulps %xmm13, %xmm12").ports) == {0}
        skl = PortProber("skylake")
        assert set(skl.infer("addss %xmm13, %xmm12").ports) == {0, 1}

    def test_infer_many(self, prober):
        results = prober.infer_many(["add %rbx, %rax",
                                     "imul %rbx, %rax"])
        assert len(results) == 2
