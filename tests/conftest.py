"""Shared fixtures for the test suite."""

import pytest

from repro.corpus import build_application
from repro.profiler import BasicBlockProfiler
from repro.uarch import Machine


@pytest.fixture(scope="session")
def haswell():
    return Machine("haswell", seed=7)


@pytest.fixture(scope="session")
def ivybridge():
    return Machine("ivybridge", seed=7)


@pytest.fixture(scope="session")
def skylake():
    return Machine("skylake", seed=7)


@pytest.fixture(scope="session")
def profiler(haswell):
    return BasicBlockProfiler(haswell)


@pytest.fixture(scope="session")
def small_corpus():
    """A small but diverse corpus (fast enough for unit tests)."""
    return build_application("llvm", count=120, seed=3)


@pytest.fixture(scope="session")
def vector_corpus():
    return build_application("openblas", count=60, seed=3)
