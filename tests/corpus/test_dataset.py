"""Corpus assembly, scaling, frequencies."""

import pytest

from repro.corpus import (DEFAULT_APPS, GOOGLE_APPS, TABLE3_APPS,
                          build_application, build_corpus,
                          build_google_corpus, get_spec)
from repro.corpus.dataset import Corpus
from repro.corpus.tracing import assign_frequencies


class TestTable3Proportions:
    #: Paper Table III counts.
    PAPER = {
        "openblas": 19032, "redis": 9343, "sqlite": 8871,
        "gzip": 2272, "tensorflow": 71988, "llvm": 212758,
        "eigen": 4545, "embree": 12602, "ffmpeg": 17150,
    }

    def test_paper_counts_recorded(self):
        for app, count in self.PAPER.items():
            assert get_spec(app).paper_blocks == count

    def test_paper_total(self):
        assert sum(self.PAPER.values()) == 358561

    def test_scaled_counts_proportional(self):
        corpus = build_corpus(scale=0.002, applications=TABLE3_APPS)
        counts = corpus.counts()
        for app, paper in self.PAPER.items():
            assert counts[app] == max(8, round(paper * 0.002))

    def test_default_corpus_includes_openssl(self):
        corpus = build_corpus(scale=0.002)
        assert "openssl" in corpus.counts()
        assert set(TABLE3_APPS) <= set(corpus.counts())


class TestCorpusApi:
    @pytest.fixture(scope="class")
    def corpus(self):
        return build_corpus(scale=0.001)

    def test_block_ids_unique_and_ordered(self, corpus):
        ids = [r.block_id for r in corpus]
        assert ids == sorted(set(ids))

    def test_by_application(self, corpus):
        grouped = corpus.by_application()
        assert sum(len(v) for v in grouped.values()) == len(corpus)

    def test_subset(self, corpus):
        sub = corpus.subset(["gzip", "redis"])
        assert set(sub.counts()) == {"gzip", "redis"}

    def test_top_by_frequency(self, corpus):
        top = corpus.top_by_frequency(10)
        assert len(top) == 10
        freqs = [r.frequency for r in top]
        assert freqs == sorted(freqs, reverse=True)
        assert freqs[0] == max(r.frequency for r in corpus)

    def test_blocks_property(self, corpus):
        assert len(corpus.blocks) == len(corpus)

    def test_reproducible(self):
        a = build_corpus(scale=0.001, seed=4)
        b = build_corpus(scale=0.001, seed=4)
        assert [r.block for r in a] == [r.block for r in b]


class TestFrequencies:
    def test_every_block_executed_at_least_once(self):
        freqs = assign_frequencies(100, 1.5, seed=0)
        assert len(freqs) == 100
        assert min(freqs) >= 1

    def test_zipf_concentration(self):
        freqs = sorted(assign_frequencies(500, 1.6, seed=1),
                       reverse=True)
        top_share = sum(freqs[:25]) / sum(freqs)
        assert top_share > 0.5  # hot blocks dominate

    def test_deterministic(self):
        assert assign_frequencies(50, 1.4, seed=2) == \
            assign_frequencies(50, 1.4, seed=2)

    def test_empty(self):
        assert assign_frequencies(0, 1.4) == []

    def test_kernel_apps_hot_blocks_are_vectorized(self):
        """The hot-kernel bias: frequency mass sits on vector blocks."""
        app = build_application("tensorflow", count=400, seed=0)
        total = sum(r.frequency for r in app)
        from repro.models.residual import block_mix
        vec_mass = sum(r.frequency for r in app
                       if block_mix(r.block)["vector"] > 0.3)
        assert vec_mass / total > 0.5


class TestGoogleCorpora:
    def test_both_apps_built(self):
        corpora = build_google_corpus(scale=0.001)
        assert set(corpora) == set(GOOGLE_APPS)

    def test_top_frequency_selection(self):
        corpora = build_google_corpus(scale=0.001)
        spanner = corpora["spanner"]
        assert len(spanner) == max(16, round(100_000 * 0.001))

    def test_load_heavy_profile(self):
        corpora = build_google_corpus(scale=0.002)
        for name, corpus in corpora.items():
            loads = sum(1 for r in corpus for i in r.block
                        if i.loads_memory)
            total = sum(len(r.block) for r in corpus)
            assert loads / total > 0.2, name
