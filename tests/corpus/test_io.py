"""Dataset serialization round-trips."""

import os

import pytest

from repro.corpus import build_application
from repro.corpus.io import (StreamCsvWriter, StreamJsonWriter,
                             block_from_field, block_to_field,
                             load_csv, load_json, save_csv, save_json)


@pytest.fixture(scope="module")
def corpus():
    return build_application("gzip", count=40, seed=7)


@pytest.fixture(scope="module")
def measured(corpus):
    # Synthetic measurements for half the blocks.
    return {r.block_id: 1.5 + r.block_id for r in corpus
            if r.block_id % 2 == 0}


class TestFieldEncoding:
    def test_round_trip(self, corpus):
        for record in corpus.records[:10]:
            field = block_to_field(record.block)
            assert "\n" not in field
            assert block_from_field(field) == record.block


class TestCsv:
    def test_full_corpus(self, corpus, tmp_path):
        path = os.path.join(tmp_path, "suite.csv")
        written = save_csv(path, corpus)
        assert written == len(corpus)
        loaded = list(load_csv(path))
        assert len(loaded) == len(corpus)
        assert all(tput is None for _, tput in loaded)
        assert loaded[0][0] == corpus.records[0].block

    def test_measured_only(self, corpus, measured, tmp_path):
        path = os.path.join(tmp_path, "measured.csv")
        written = save_csv(path, corpus, measured)
        assert written == len(measured)
        loaded = list(load_csv(path))
        assert all(tput is not None for _, tput in loaded)

    def test_bhive_like_two_columns(self, corpus, measured, tmp_path):
        path = os.path.join(tmp_path, "m.csv")
        save_csv(path, corpus, measured)
        with open(path) as fh:
            first = fh.readline()
        assert first.count('"') in (0, 2, 4)
        assert "," in first


class TestJson:
    def test_lossless_round_trip(self, corpus, measured, tmp_path):
        path = os.path.join(tmp_path, "suite.json")
        save_json(path, corpus, measured)
        loaded, loaded_measured = load_json(path)
        assert len(loaded) == len(corpus)
        assert loaded.scale == corpus.scale
        for a, b in zip(corpus, loaded):
            assert a.block == b.block
            assert a.application == b.application
            assert a.frequency == b.frequency
            assert a.block_id == b.block_id
        assert loaded_measured == measured

    def test_without_measurements(self, corpus, tmp_path):
        path = os.path.join(tmp_path, "plain.json")
        save_json(path, corpus)
        _, loaded_measured = load_json(path)
        assert loaded_measured == {}


class TestStreamWriters:
    """The incremental writers emit the batch savers' exact bytes."""

    def _bytes(self, path):
        with open(path, "rb") as fh:
            return fh.read()

    def test_csv_byte_identical(self, corpus, tmp_path):
        batch = os.path.join(tmp_path, "batch.csv")
        streamed = os.path.join(tmp_path, "streamed.csv")
        save_csv(batch, corpus)
        with StreamCsvWriter(streamed) as writer:
            for record in corpus:
                assert writer.add(record)
        assert writer.written == len(corpus)
        assert self._bytes(streamed) == self._bytes(batch)

    def test_csv_measured_byte_identical(self, corpus, measured,
                                         tmp_path):
        batch = os.path.join(tmp_path, "batch.csv")
        streamed = os.path.join(tmp_path, "streamed.csv")
        save_csv(batch, corpus, measured)
        with StreamCsvWriter(streamed, measured=True) as writer:
            for record in corpus:
                kept = writer.add(record,
                                  measured.get(record.block_id))
                assert kept == (record.block_id in measured)
        assert writer.written == len(measured)
        assert self._bytes(streamed) == self._bytes(batch)

    def test_json_byte_identical(self, corpus, measured, tmp_path):
        batch = os.path.join(tmp_path, "batch.json")
        streamed = os.path.join(tmp_path, "streamed.json")
        save_json(batch, corpus, measured)
        with StreamJsonWriter(streamed, corpus.scale) as writer:
            for record in corpus:
                writer.add(record, measured.get(record.block_id))
        assert self._bytes(streamed) == self._bytes(batch)

    def test_json_empty_byte_identical(self, corpus, tmp_path):
        from repro.corpus.dataset import Corpus
        empty = Corpus([], scale=corpus.scale)
        batch = os.path.join(tmp_path, "batch.json")
        streamed = os.path.join(tmp_path, "streamed.json")
        save_json(batch, empty)
        with StreamJsonWriter(streamed, empty.scale):
            pass
        assert self._bytes(streamed) == self._bytes(batch)

    def test_streamed_json_loads_back(self, corpus, measured,
                                      tmp_path):
        path = os.path.join(tmp_path, "round.json")
        with StreamJsonWriter(path, corpus.scale) as writer:
            for record in corpus:
                writer.add(record, measured.get(record.block_id))
        loaded, loaded_measured = load_json(path)
        assert len(loaded) == len(corpus)
        assert loaded_measured == measured
