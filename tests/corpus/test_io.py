"""Dataset serialization round-trips."""

import os

import pytest

from repro.corpus import build_application
from repro.corpus.io import (block_from_field, block_to_field, load_csv,
                             load_json, save_csv, save_json)


@pytest.fixture(scope="module")
def corpus():
    return build_application("gzip", count=40, seed=7)


@pytest.fixture(scope="module")
def measured(corpus):
    # Synthetic measurements for half the blocks.
    return {r.block_id: 1.5 + r.block_id for r in corpus
            if r.block_id % 2 == 0}


class TestFieldEncoding:
    def test_round_trip(self, corpus):
        for record in corpus.records[:10]:
            field = block_to_field(record.block)
            assert "\n" not in field
            assert block_from_field(field) == record.block


class TestCsv:
    def test_full_corpus(self, corpus, tmp_path):
        path = os.path.join(tmp_path, "suite.csv")
        written = save_csv(path, corpus)
        assert written == len(corpus)
        loaded = list(load_csv(path))
        assert len(loaded) == len(corpus)
        assert all(tput is None for _, tput in loaded)
        assert loaded[0][0] == corpus.records[0].block

    def test_measured_only(self, corpus, measured, tmp_path):
        path = os.path.join(tmp_path, "measured.csv")
        written = save_csv(path, corpus, measured)
        assert written == len(measured)
        loaded = list(load_csv(path))
        assert all(tput is not None for _, tput in loaded)

    def test_bhive_like_two_columns(self, corpus, measured, tmp_path):
        path = os.path.join(tmp_path, "m.csv")
        save_csv(path, corpus, measured)
        with open(path) as fh:
            first = fh.readline()
        assert first.count('"') in (0, 2, 4)
        assert "," in first


class TestJson:
    def test_lossless_round_trip(self, corpus, measured, tmp_path):
        path = os.path.join(tmp_path, "suite.json")
        save_json(path, corpus, measured)
        loaded, loaded_measured = load_json(path)
        assert len(loaded) == len(corpus)
        assert loaded.scale == corpus.scale
        for a, b in zip(corpus, loaded):
            assert a.block == b.block
            assert a.application == b.application
            assert a.frequency == b.frequency
            assert a.block_id == b.block_id
        assert loaded_measured == measured

    def test_without_measurements(self, corpus, tmp_path):
        path = os.path.join(tmp_path, "plain.json")
        save_json(path, corpus)
        _, loaded_measured = load_json(path)
        assert loaded_measured == {}
