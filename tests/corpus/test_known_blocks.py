"""The paper's literal example blocks."""

import pytest

from repro.corpus import (div_block, gzip_crc_block,
                          tensorflow_ablation_block, zero_idiom_block)
from repro.profiler import BasicBlockProfiler, FailureReason
from repro.uarch import Machine


class TestGzipCrc:
    def test_literal_text_matches_paper(self):
        block = gzip_crc_block(aligned=False)
        assert len(block) == 7
        assert block[3].mnemonic == "xor"
        assert block[5].memory_operand.disp == 0x4110A

    def test_aligned_variant_differs_only_in_displacement(self):
        literal = gzip_crc_block(aligned=False)
        aligned = gzip_crc_block(aligned=True)
        assert len(literal) == len(aligned)
        assert aligned[5].memory_operand.disp == 0x41108

    def test_literal_variant_trips_misalignment_filter(self, profiler):
        result = profiler.profile(gzip_crc_block(aligned=False))
        assert result.failure is FailureReason.MISALIGNED

    def test_aligned_variant_measures_about_eight(self, profiler):
        result = profiler.profile(gzip_crc_block())
        assert result.ok
        assert result.throughput == pytest.approx(8.25, abs=1.0)


class TestDivBlock:
    def test_structure(self):
        assert [i.mnemonic for i in div_block()] == \
            ["xor", "div", "test"]

    def test_measures_about_22(self, profiler):
        result = profiler.profile(div_block())
        assert result.throughput == pytest.approx(21.62, abs=2.0)


class TestZeroIdiom:
    def test_measures_quarter_cycle(self, profiler):
        result = profiler.profile(zero_idiom_block())
        assert result.throughput == pytest.approx(0.25, abs=0.01)


class TestTensorflowBlock:
    def test_shape(self):
        block = tensorflow_ablation_block()
        assert len(block) >= 70
        # 100x unroll must overflow the 32KB L1I.
        assert block.byte_length * 100 > 32 * 1024
        # ...but the two-factor plan must fit.
        assert block.byte_length * 32 < 24 * 1024

    def test_profiles_cleanly_with_full_technique(self):
        result = BasicBlockProfiler(Machine("haswell")) \
            .profile(tensorflow_ablation_block())
        assert result.ok

    def test_subnormal_chain_active_without_ftz(self):
        from repro.profiler import ProfilerConfig, EnvironmentConfig
        from repro.profiler.filters import AcceptancePolicy
        config = ProfilerConfig(
            environment=EnvironmentConfig(ftz=False),
            acceptance=AcceptancePolicy(enforce_invariants=False,
                                        reject_misaligned=False))
        result = BasicBlockProfiler(Machine("haswell"), config) \
            .profile(tensorflow_ablation_block())
        assert result.subnormal_events > 0
