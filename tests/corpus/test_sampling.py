"""Stratified sampling: deterministic, order-blind, honest CIs.

Three layers:

* the sampler itself — seeded determinism, order-blindness (the kept
  *set* is a pure function of block content, never arrival order),
  exact per-stratum quotas, and stream/materialised agreement;
* the projection algebra — post-stratified recombination against
  synthetic validation rows with known answers;
* the acceptance criterion — a 25 % stratified sample's projected
  overall error covers the true full-corpus error within the reported
  bootstrap CI, for real models on a real (simulated) corpus.
"""

import random

import pytest

from repro.corpus import sampling
from repro.corpus.dataset import build_corpus
from repro.eval.validation import ValidationResult, ValidationRow


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(scale=0.002, seed=1)


class TestSampler:
    def test_deterministic(self, corpus):
        a = sampling.sample_corpus(corpus, 0.25, seed=7)
        b = sampling.sample_corpus(corpus, 0.25, seed=7)
        assert [r.block_id for r in a] == [r.block_id for r in b]

    def test_seed_changes_selection(self, corpus):
        a = sampling.sample_corpus(corpus, 0.25, seed=7)
        b = sampling.sample_corpus(corpus, 0.25, seed=8)
        assert {r.block_id for r in a} != {r.block_id for r in b}

    def test_order_blind(self, corpus):
        reference = {r.block_id
                     for r in sampling.sample_corpus(corpus, 0.25,
                                                     seed=7)}
        shuffled = list(corpus.records)
        random.Random(3).shuffle(shuffled)
        assert {r.block_id
                for r in sampling.sample_corpus(shuffled, 0.25,
                                                seed=7)} == reference

    def test_preserves_corpus_order(self, corpus):
        sample = sampling.sample_corpus(corpus, 0.25, seed=7)
        ids = [r.block_id for r in sample]
        assert ids == sorted(ids)

    def test_exact_quotas(self, corpus):
        fraction = 0.25
        full = sampling.stratum_counts(corpus)
        got = sampling.stratum_counts(
            sampling.sample_corpus(corpus, fraction, seed=7))
        for cell, n in full.items():
            assert got.get(cell, 0) == max(1, int(round(fraction * n)))

    def test_fraction_one_keeps_everything(self, corpus):
        sample = sampling.sample_corpus(corpus, 1.0, seed=0)
        assert len(sample) == len(corpus)

    def test_rejects_bad_fraction(self, corpus):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                sampling.sample_corpus(corpus, bad)
            with pytest.raises(ValueError):
                list(sampling.sample_stream(iter(corpus), bad))

    def test_stream_order_blind_and_deterministic(self, corpus):
        kept = {r.block_id
                for r in sampling.sample_stream(iter(corpus), 0.25,
                                                seed=7)}
        shuffled = list(corpus.records)
        random.Random(5).shuffle(shuffled)
        assert {r.block_id
                for r in sampling.sample_stream(iter(shuffled), 0.25,
                                                seed=7)} == kept
        # Roughly the asked-for fraction (binomial, generous band).
        assert 0.10 * len(corpus) < len(kept) < 0.45 * len(corpus)

    def test_categories_are_exhaustive(self, corpus):
        for record in corpus:
            assert sampling.block_category(record.block) \
                in sampling.CATEGORIES


class TestProjectionAlgebra:
    """Synthetic rows with known per-stratum errors."""

    def _result(self, rows):
        return ValidationResult(uarch="haswell", rows=rows,
                                profiled_fraction=1.0,
                                model_names=["m"])

    def _record(self, corpus, block_id):
        return next(r for r in corpus if r.block_id == block_id)

    def test_post_stratified_estimate(self, corpus):
        # Two strata with constant within-stratum error: the estimate
        # must be the full-count-weighted mean, exactly.
        cells = sampling.stratum_counts(corpus)
        (cell_a, n_a), (cell_b, n_b) = sorted(
            cells.items(), key=lambda kv: -kv[1])[:2]
        per_cell = {cell_a: 0.10, cell_b: 0.30}
        rows, records = [], []
        for record in corpus:
            cell = sampling.stratum(record)
            if cell not in per_cell or len(rows) > 200:
                continue
            records.append(record)
            rows.append(ValidationRow(
                block_id=record.block_id,
                application=record.application,
                frequency=record.frequency, category=None,
                measured=2.0,
                predictions={"m": 2.0 * (1.0 + per_cell[cell])}))
        counts = {cell_a: n_a, cell_b: n_b}
        projection = sampling.project_validation(
            self._result(rows), records, counts, seed=0, bootstrap=50)
        expected = (n_a * 0.10 + n_b * 0.30) / (n_a + n_b)
        overall = projection["models"]["m"]["overall"]
        assert overall["estimate"] == pytest.approx(expected,
                                                    rel=1e-9)
        # Constant errors -> zero-width bootstrap interval.
        assert overall["low"] == pytest.approx(expected, rel=1e-9)
        assert overall["high"] == pytest.approx(expected, rel=1e-9)

    def test_projection_deterministic(self, corpus):
        records = corpus.records[:60]
        rows = [ValidationRow(block_id=r.block_id,
                              application=r.application,
                              frequency=r.frequency, category=None,
                              measured=2.0,
                              predictions={"m": 2.0 + 0.01
                                           * (r.block_id % 13)})
                for r in records]
        counts = sampling.stratum_counts(corpus)
        a = sampling.project_validation(self._result(rows), records,
                                        counts, seed=4)
        b = sampling.project_validation(self._result(rows), records,
                                        counts, seed=4)
        assert a == b
        c = sampling.project_validation(self._result(rows), records,
                                        counts, seed=5)
        assert a["models"]["m"]["overall"] \
            != c["models"]["m"]["overall"]

    def test_render_projection_mentions_models(self, corpus):
        records = corpus.records[:30]
        rows = [ValidationRow(block_id=r.block_id,
                              application=r.application,
                              frequency=r.frequency, category=None,
                              measured=1.0, predictions={"m": 1.1})
                for r in records]
        projection = sampling.project_validation(
            self._result(rows), records,
            sampling.stratum_counts(corpus), seed=0, bootstrap=20)
        text = sampling.render_projection(projection)
        assert "m" in text and "95% CI" in text


class TestAcceptance:
    """A 25 % sample projects the full-corpus error within its CI."""

    def test_quarter_sample_covers_full_error(self):
        from repro.eval.validation import validate
        from repro.models import IacaModel, LlvmMcaModel

        corpus = build_corpus(scale=0.004, seed=0)
        counts = sampling.stratum_counts(corpus)
        models = [IacaModel(), LlvmMcaModel()]
        full = validate(corpus, "haswell", models, seed=0,
                        train_fraction=0.0)

        sample = sampling.sample_corpus(corpus, 0.25, seed=0)
        partial = validate(sample, "haswell", models, seed=0,
                           train_fraction=0.0)
        projection = sampling.project_validation(
            partial, sample.records, counts, seed=0)
        for model in ("IACA", "llvm-mca"):
            true_error = full.overall_error(model)
            overall = projection["models"][model]["overall"]
            assert overall["low"] <= true_error <= overall["high"], \
                (model, true_error, overall)
