"""Streamed corpus generation equals batch construction, by bytes.

The streamed pipeline's first link: ``iter_application`` /
``iter_corpus`` must yield exactly the records ``build_application`` /
``build_corpus`` materialise (they are the same code — the builders
are ``list(...)`` wrappers — but these tests pin that equivalence
against refactors), and ``stream_shards`` over any record stream must
cut exactly the shards ``shard_corpus`` would (hypothesis-proven for
arbitrary generator orders and shard sizes).
"""

import random

import pytest

from repro.corpus.dataset import (DEFAULT_APPS, BlockRecord,
                                  build_application, build_corpus)
from repro.corpus.streaming import (corpus_spec_digest,
                                    default_prefetch, iter_application,
                                    iter_corpus, stream_enabled)
from repro.isa.parser import parse_block
from repro.parallel import shard_corpus, stream_shards

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - environment-dependent
    HAVE_HYPOTHESIS = False


def _record_key(record):
    return (record.block_id, record.application, record.frequency,
            record.block.text())


class TestIterEqualsBuild:
    def test_iter_application_equals_build(self):
        lazy = list(iter_application("gzip", count=17, seed=3))
        built = build_application("gzip", count=17, seed=3).records
        assert [_record_key(r) for r in lazy] \
            == [_record_key(r) for r in built]

    def test_iter_corpus_equals_build(self):
        lazy = list(iter_corpus(scale=0.001, seed=2))
        built = build_corpus(scale=0.001, seed=2).records
        assert [_record_key(r) for r in lazy] \
            == [_record_key(r) for r in built]
        # Global block ids are consecutive across applications.
        assert [r.block_id for r in lazy] == list(range(len(lazy)))

    def test_iter_corpus_is_lazy(self):
        iterator = iter_corpus(scale=0.001, seed=0)
        first = next(iterator)
        assert first.block_id == 0
        assert first.application == DEFAULT_APPS[0]

    def test_application_subset(self):
        lazy = list(iter_corpus(scale=0.001, seed=0,
                                applications=("gzip", "redis")))
        built = build_corpus(scale=0.001, seed=0,
                             applications=("gzip", "redis")).records
        assert [_record_key(r) for r in lazy] \
            == [_record_key(r) for r in built]


class TestSpecDigest:
    def test_stable_and_parameter_sensitive(self):
        base = corpus_spec_digest(0.001, 0)
        assert base == corpus_spec_digest(0.001, 0)
        assert base != corpus_spec_digest(0.002, 0)
        assert base != corpus_spec_digest(0.001, 1)
        assert base != corpus_spec_digest(0.001, 0, shard_size=16)
        assert base != corpus_spec_digest(
            0.001, 0, applications=("gzip",))


class TestEnvSwitches:
    def test_stream_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_STREAM", raising=False)
        assert not stream_enabled()
        monkeypatch.setenv("REPRO_STREAM", "1")
        assert stream_enabled()
        monkeypatch.setenv("REPRO_STREAM", "0")
        assert not stream_enabled()

    def test_default_prefetch(self, monkeypatch):
        monkeypatch.delenv("REPRO_STREAM_PREFETCH", raising=False)
        assert default_prefetch(4) == 8
        assert default_prefetch(1) == 2
        monkeypatch.setenv("REPRO_STREAM_PREFETCH", "3")
        assert default_prefetch(2) == 6


# ---------------------------------------------------------------------------
# stream_shards == shard_corpus, for any record stream and shard size
# ---------------------------------------------------------------------------

_BLOCK_POOL = [parse_block(text) for text in (
    "add %rax, %rbx",
    "xor %edx, %edx\ndiv %ecx",
    "mov 0x8(%rsp), %rcx\nadd %rcx, %rax",
    "mulps %xmm1, %xmm2\naddps %xmm2, %xmm3",
    "lea 0x4(%rdi,%rsi,2), %rax",
)]


def _make_records(choices):
    return [BlockRecord(block=_BLOCK_POOL[c % len(_BLOCK_POOL)],
                        application="test", frequency=1, block_id=i)
            for i, c in enumerate(choices)]


def _shards_equal(streamed, batch):
    assert len(streamed) == len(batch)
    for ours, theirs in zip(streamed, batch):
        assert ours.index == theirs.index
        assert ours.digest == theirs.digest
        assert [r.block_id for r in ours.records] \
            == [r.block_id for r in theirs.records]


def check_stream_equals_batch(choices, shard_size):
    records = _make_records(choices)
    streamed = list(stream_shards(iter(records), shard_size))
    _shards_equal(streamed, shard_corpus(records, shard_size))


if HAVE_HYPOTHESIS:
    @settings(max_examples=60, deadline=None)
    @given(choices=st.lists(st.integers(min_value=0, max_value=4),
                            max_size=40),
           shard_size=st.integers(min_value=1, max_value=9))
    def test_stream_shards_equals_shard_corpus(choices, shard_size):
        check_stream_equals_batch(choices, shard_size)
else:  # pragma: no cover - hypothesis available in CI
    @pytest.mark.parametrize("case_seed", range(30))
    def test_stream_shards_equals_shard_corpus(case_seed):
        rng = random.Random(case_seed)
        choices = [rng.randrange(5)
                   for _ in range(rng.randrange(40))]
        check_stream_equals_batch(choices, rng.randrange(1, 10))


def test_stream_shards_rejects_bad_size():
    with pytest.raises(ValueError):
        list(stream_shards(iter(()), 0))


def test_stream_shards_holds_one_chunk(monkeypatch):
    """The generator yields as soon as a shard fills — it never
    accumulates the stream (checked by interleaving consumption with
    generation)."""
    produced = []

    def generator():
        for record in _make_records([0, 1, 2, 3, 4, 0, 1]):
            produced.append(record.block_id)
            yield record

    it = stream_shards(generator(), 3)
    first = next(it)
    assert first.index == 0
    assert produced == [0, 1, 2]  # nothing beyond the first shard
    second = next(it)
    assert second.index == 1
    assert produced == [0, 1, 2, 3, 4, 5]
    third = next(it)
    assert len(third) == 1  # trailing partial shard
    assert list(it) == []
