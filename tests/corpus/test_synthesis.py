"""Block synthesis: validity, determinism, profile adherence."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.corpus import BlockSynthesizer, get_spec
from repro.corpus.appspec import PATHOLOGICAL, TEMPLATES
from repro.profiler import BasicBlockProfiler, FailureReason
from repro.uarch import Machine


class TestDeterminism:
    def test_same_seed_same_blocks(self):
        a = BlockSynthesizer(get_spec("llvm"), seed=5).blocks(20)
        b = BlockSynthesizer(get_spec("llvm"), seed=5).blocks(20)
        assert a == b

    def test_different_seeds_differ(self):
        a = BlockSynthesizer(get_spec("llvm"), seed=5).blocks(20)
        b = BlockSynthesizer(get_spec("llvm"), seed=6).blocks(20)
        assert a != b

    def test_source_tagged(self):
        blocks = BlockSynthesizer(get_spec("redis"), seed=1).blocks(5)
        assert all(b.source == "redis" for b in blocks)


class TestSpecAdherence:
    def test_lengths_respect_bounds(self):
        spec = get_spec("llvm")
        blocks = BlockSynthesizer(spec, seed=0).blocks(200)
        ordinary = [b for b in blocks
                    if len(b) <= spec.max_length + 10]
        assert len(ordinary) >= 190  # pathologies may add a few instrs

    def test_register_only_share_close_to_spec(self):
        spec = get_spec("llvm")
        blocks = BlockSynthesizer(spec, seed=0).blocks(600)
        share = sum(1 for b in blocks
                    if not b.has_memory_access) / len(blocks)
        assert abs(share - spec.register_only_fraction) < 0.06

    def test_memory_blocks_really_have_memory(self):
        blocks = BlockSynthesizer(get_spec("llvm"), seed=0).blocks(300)
        for block in blocks:
            if not block.has_memory_access:
                # Every no-memory block must be a deliberate one: no
                # loads/stores at all, not even truncated remnants.
                assert all(not i.has_memory_access for i in block)

    def test_vector_apps_emit_vector_code(self):
        blocks = BlockSynthesizer(get_spec("openblas"), seed=0) \
            .blocks(100)
        vec_share = sum(1 for b in blocks for i in b if i.info.vec) / \
            sum(len(b) for b in blocks)
        assert vec_share > 0.4

    def test_scalar_apps_mostly_scalar(self):
        blocks = BlockSynthesizer(get_spec("sqlite"), seed=0).blocks(100)
        vec_share = sum(1 for b in blocks for i in b if i.info.vec) / \
            sum(len(b) for b in blocks)
        assert vec_share < 0.1

    def test_long_kernels_present_for_kernel_apps(self):
        spec = get_spec("openblas")
        blocks = BlockSynthesizer(spec, seed=0).blocks(300)
        long_blocks = [b for b in blocks
                       if len(b) >= spec.long_kernel_length[0]]
        share = len(long_blocks) / len(blocks)
        assert abs(share - spec.long_kernel_fraction) < 0.06


class TestExecutability:
    @pytest.mark.parametrize("app", ["llvm", "redis", "gzip",
                                     "openblas", "ffmpeg"])
    def test_most_blocks_profile_successfully(self, app):
        profiler = BasicBlockProfiler(Machine("haswell"))
        blocks = BlockSynthesizer(get_spec(app), seed=2).blocks(60)
        results = [profiler.profile(b) for b in blocks]
        ok = sum(1 for r in results if r.ok)
        assert ok / len(results) > 0.85

    def test_pathology_rates_are_low_but_nonzero(self):
        profiler = BasicBlockProfiler(Machine("haswell"))
        blocks = BlockSynthesizer(get_spec("llvm"), seed=9).blocks(400)
        failures = [profiler.profile(b).failure for b in blocks]
        kinds = {f for f in failures if f is not None}
        assert FailureReason.UNSUPPORTED in kinds
        share = sum(1 for f in failures if f) / len(failures)
        assert 0.02 < share < 0.12


class TestSpecValidation:
    def test_all_specs_use_known_templates(self):
        from repro.corpus.dataset import DEFAULT_APPS, GOOGLE_APPS
        for app in DEFAULT_APPS + GOOGLE_APPS:
            spec = get_spec(app)
            mix = spec.normalized_mix()
            assert abs(sum(mix.values()) - 1.0) < 1e-9
            assert set(spec.pathology) <= set(PATHOLOGICAL)

    def test_unknown_template_rejected(self):
        from repro.corpus.appspec import ApplicationSpec
        spec = ApplicationSpec(name="bad", domain="x", paper_blocks=1,
                               mix={"warp_drive": 1.0})
        with pytest.raises(ValueError):
            spec.normalized_mix()

    def test_memory_free_mix_has_no_memory_templates(self):
        mix = get_spec("llvm").memory_free_mix()
        assert "load" not in mix and "store" not in mix
        assert abs(sum(mix.values()) - 1.0) < 1e-9


@given(st.sampled_from(["llvm", "tensorflow", "embree", "spanner"]),
       st.integers(min_value=0, max_value=200))
@settings(max_examples=40, deadline=None)
def test_every_generated_block_is_parseable_and_nonempty(app, seed):
    block = BlockSynthesizer(get_spec(app), seed=seed).block()
    assert len(block) >= 1
    for instr in block:
        assert instr.info is not None
