"""Execution-frequency assignment (the DynamoRIO stand-in)."""

from hypothesis import given, settings, strategies as st

from repro.corpus.tracing import assign_frequencies, weighted_choice


class TestAssignFrequencies:
    def test_loop_bodies_share_heat(self):
        """Consecutive blocks (a loop body) get correlated counts."""
        freqs = assign_frequencies(200, 1.5, seed=3)
        # A hot block's neighbours within its smoothing span are at
        # least 60% as hot (the smoothing invariant).
        hottest = max(range(200), key=lambda i: freqs[i])
        span = [freqs[j] for j in range(max(0, hottest - 1),
                                        min(200, hottest + 2))]
        assert min(span) >= 1

    @given(st.integers(min_value=1, max_value=300),
           st.floats(min_value=1.0, max_value=2.5))
    @settings(max_examples=30, deadline=None)
    def test_all_positive_and_correct_length(self, n, exponent):
        freqs = assign_frequencies(n, exponent, seed=1)
        assert len(freqs) == n
        assert all(f >= 1 for f in freqs)

    def test_higher_exponent_more_concentration(self):
        flat = sorted(assign_frequencies(400, 1.0, seed=2),
                      reverse=True)
        steep = sorted(assign_frequencies(400, 2.2, seed=2),
                       reverse=True)
        flat_top = sum(flat[:20]) / sum(flat)
        steep_top = sum(steep[:20]) / sum(steep)
        assert steep_top > flat_top


class TestWeightedChoice:
    def test_respects_weights(self):
        items = ["cold", "hot"]
        picks = weighted_choice(items, [1, 99], k=200, seed=0)
        assert picks.count("hot") > 150

    def test_deterministic(self):
        items = list(range(10))
        a = weighted_choice(items, [1] * 10, k=50, seed=4)
        b = weighted_choice(items, [1] * 10, k=50, seed=4)
        assert a == b
