"""Regenerate the golden regression corpus and its expected profiles.

Run from the repo root **only when simulator timing is intentionally
changed**::

    PYTHONPATH=src python tests/data/regen_golden.py

and commit the rewritten ``golden_corpus.json`` /
``golden_profile_<uarch>.json`` together with the change that moved
the numbers, explaining the drift in the commit message.  The guard
test (``tests/parallel/test_golden.py``) exists precisely so that
timing drift cannot land silently.
"""

import json
import os

HERE = os.path.dirname(os.path.abspath(__file__))

#: Frozen inputs: a small mixed corpus (scalar, memory, vector and
#: division blocks) profiled on every modelled uarch.
APPS = (("llvm", 10), ("openblas", 6), ("gzip", 6))
SEED = 11
UARCHES = ("ivybridge", "haswell", "skylake")


def build_records():
    from repro.corpus.dataset import BlockRecord, Corpus, \
        build_application
    records = []
    for app, count in APPS:
        for record in build_application(app, count=count, seed=SEED):
            records.append(BlockRecord(
                block=record.block, application=app,
                frequency=record.frequency, block_id=len(records)))
    return Corpus(records)


def main() -> None:
    from repro.eval.validation import profile_corpus_detailed

    corpus = build_records()
    corpus_doc = {
        "seed": SEED,
        "blocks": [{"block_id": r.block_id,
                    "application": r.application,
                    "frequency": r.frequency,
                    "text": r.block.text()} for r in corpus],
    }
    with open(os.path.join(HERE, "golden_corpus.json"), "w") as fh:
        json.dump(corpus_doc, fh, indent=1)
        fh.write("\n")

    for uarch in UARCHES:
        profile = profile_corpus_detailed(corpus, uarch, seed=SEED)
        doc = {"uarch": uarch, "seed": SEED,
               "throughputs": {str(k): v
                               for k, v in profile.throughputs.items()},
               "funnel": profile.funnel}
        path = os.path.join(HERE, f"golden_profile_{uarch}.json")
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=1)
            fh.write("\n")
        print(f"wrote {path}: {profile.funnel}")


if __name__ == "__main__":
    main()
