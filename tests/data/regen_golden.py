"""Regenerate the golden regression corpus and its expected profiles.

Run from the repo root **only when simulator timing is intentionally
changed**::

    PYTHONPATH=src python tests/data/regen_golden.py

and commit the rewritten ``golden_corpus.json`` /
``golden_profile_<uarch>.json`` together with the change that moved
the numbers, explaining the drift in the commit message.  The guard
test (``tests/parallel/test_golden.py``) exists precisely so that
timing drift cannot land silently.
"""

import json
import os

HERE = os.path.dirname(os.path.abspath(__file__))

#: Frozen inputs: a small mixed corpus (scalar, memory, vector and
#: division blocks) profiled on every modelled uarch.
APPS = (("llvm", 10), ("openblas", 6), ("gzip", 6))
SEED = 11
UARCHES = ("ivybridge", "haswell", "skylake")

#: Lane-shaped block families: every member of a family shares one
#: lane fingerprint (same mnemonics/operand shapes/encoded lengths,
#: immediates varying within one encoding class), so the batch-lane
#: vectorizer (``repro.runtime.lanes``) can group them.  A small
#: sample is folded into the golden corpus itself; the larger
#: ``golden_lanes.json`` fixture feeds the lane differential suite
#: and ``benchmarks/bench_lanes.py``.
GOLDEN_LANE_SHAPES = (
    "movq (%%rax), %%rbx\naddq $0x%x, %%rbx\nmovq %%rbx, 8(%%rax)",
    "addq $0x%x, %%rbx\nxorq %%rbx, %%rcx\n"
    "leaq (%%rbx,%%rcx,2), %%rdx\nrolq $3, %%rdx",
    "cmpq $0x%x, %%rsi\ncmovne %%rdi, %%r8\nsete %%al\n"
    "sbbq %%rdx, %%rdx",
)
GOLDEN_LANE_MEMBERS = 8

LANES_FIXTURE_SHAPES = GOLDEN_LANE_SHAPES + (
    "movzwl 16(%%rdi), %%eax\nandl $0x%x, %%eax\n"
    "orl %%eax, %%esi\nmovl %%esi, 16(%%rdi)",
    "movq 24(%%rsp), %%rcx\nshrq $0x%x, %%rcx\n"
    "testq %%rcx, %%rcx\nsetne %%dl",
    "decq %%r13\ncmpq $0x%x, %%r13\ncmovl %%r14, %%r13\nincq %%r15",
    "imulq $0x%x, %%rsi, %%rdi\naddq %%rdi, %%r12\nrorq $5, %%r12",
    "movq 32(%%rbx), %%rax\nsubq $0x%x, %%rax\n"
    "xorq %%rax, %%rdx\nmovq %%rdx, 40(%%rbx)",
    "movl 8(%%rbp), %%ecx\naddl $0x%x, %%ecx\nbswapl %%ecx\n"
    "movl %%ecx, 12(%%rbp)",
    "addq $0x%x, %%r8\nmovq %%r8, (%%rsi)\nadcq $0, %%r9\n"
    "movq 16(%%rsi), %%r10",
)
LANES_FIXTURE_MEMBERS = 48

#: Triage fixture shape: a mixed corpus for the triage differential
#: suite (``tests/triage``).  The ``cached`` role re-derives a subset
#: of the golden corpus (same apps, same seed — so a cold triage run
#: over it journals exactly those measurements), the ``novel`` role
#: draws from a disjoint seed, so a warm run over the mixed corpus
#: must revalidate the former and fall through to full simulation for
#: the latter.
TRIAGE_CACHED_APPS = (("llvm", 10), ("openblas", 6))
TRIAGE_NOVEL_APPS = (("llvm", 6), ("gzip", 4))
TRIAGE_NOVEL_SEED = 23


def lane_family(shape, members):
    """Same-fingerprint member texts for one family shape.

    Immediates stay in one x86 encoding class (imm32, 0x100 + 16*k)
    so every member has identical per-instruction encoded lengths —
    a requirement of the lane fingerprint.  Shift-count immediates
    would truncate (count & 0x3f), but 0x100+16k masks to a varying
    5-bit pattern anyway, which is exactly the heterogeneity the lane
    runner must prove it handles.
    """
    return [shape % (0x100 + 16 * k) for k in range(members)]


def build_records():
    from repro.corpus.dataset import BlockRecord, Corpus, \
        build_application
    from repro.isa.parser import parse_block
    records = []
    for app, count in APPS:
        for record in build_application(app, count=count, seed=SEED):
            records.append(BlockRecord(
                block=record.block, application=app,
                frequency=record.frequency, block_id=len(records)))
    for shape in GOLDEN_LANE_SHAPES:
        for text in lane_family(shape, GOLDEN_LANE_MEMBERS):
            records.append(BlockRecord(
                block=parse_block(text), application="lanes",
                frequency=2, block_id=len(records)))
    return Corpus(records)


def build_triage_records():
    """The mixed novel/cached corpus behind ``golden_triage.json``.

    Novel blocks whose text collides with a cached block (the
    generators can repeat a popular idiom across seeds) are re-labelled
    ``cached`` — the triage store is content-addressed, so a repeated
    text legitimately revalidates no matter which role produced it.
    """
    from repro.corpus.dataset import BlockRecord, Corpus, \
        build_application
    records = []
    cached_texts = set()
    for app, count in TRIAGE_CACHED_APPS:
        for record in build_application(app, count=count, seed=SEED):
            cached_texts.add(record.block.text())
            records.append((BlockRecord(
                block=record.block, application=app,
                frequency=record.frequency,
                block_id=len(records)), "cached"))
    for app, count in TRIAGE_NOVEL_APPS:
        for record in build_application(app, count=count,
                                        seed=TRIAGE_NOVEL_SEED):
            role = "cached" if record.block.text() in cached_texts \
                else "novel"
            records.append((BlockRecord(
                block=record.block, application=app,
                frequency=record.frequency,
                block_id=len(records)), role))
    return Corpus([r for r, _ in records]), [role for _, role in records]


def build_lane_records():
    """The larger all-lane fixture behind ``golden_lanes.json``."""
    from repro.corpus.dataset import BlockRecord, Corpus
    from repro.isa.parser import parse_block
    records = []
    for shape in LANES_FIXTURE_SHAPES:
        for text in lane_family(shape, LANES_FIXTURE_MEMBERS):
            records.append(BlockRecord(
                block=parse_block(text), application="lanes",
                frequency=2, block_id=len(records)))
    return Corpus(records)


def main() -> None:
    from repro.eval.validation import profile_corpus_detailed

    corpus = build_records()
    corpus_doc = {
        "seed": SEED,
        "blocks": [{"block_id": r.block_id,
                    "application": r.application,
                    "frequency": r.frequency,
                    "text": r.block.text()} for r in corpus],
    }
    with open(os.path.join(HERE, "golden_corpus.json"), "w") as fh:
        json.dump(corpus_doc, fh, indent=1)
        fh.write("\n")

    lane_corpus = build_lane_records()
    lanes_doc = {
        "seed": SEED,
        "blocks": [{"block_id": r.block_id,
                    "application": r.application,
                    "frequency": r.frequency,
                    "text": r.block.text()} for r in lane_corpus],
    }
    with open(os.path.join(HERE, "golden_lanes.json"), "w") as fh:
        json.dump(lanes_doc, fh, indent=1)
        fh.write("\n")

    triage_corpus, roles = build_triage_records()
    triage_doc = {
        "seed": SEED,
        "novel_seed": TRIAGE_NOVEL_SEED,
        "blocks": [{"block_id": r.block_id,
                    "application": r.application,
                    "frequency": r.frequency,
                    "role": role,
                    "text": r.block.text()}
                   for r, role in zip(triage_corpus, roles)],
    }
    with open(os.path.join(HERE, "golden_triage.json"), "w") as fh:
        json.dump(triage_doc, fh, indent=1)
        fh.write("\n")

    for uarch in UARCHES:
        profile = profile_corpus_detailed(corpus, uarch, seed=SEED)
        doc = {"uarch": uarch, "seed": SEED,
               "throughputs": {str(k): v
                               for k, v in profile.throughputs.items()},
               "funnel": profile.funnel}
        path = os.path.join(HERE, f"golden_profile_{uarch}.json")
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=1)
            fh.write("\n")
        print(f"wrote {path}: {profile.funnel}")


if __name__ == "__main__":
    main()
