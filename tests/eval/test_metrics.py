"""Evaluation metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.eval.metrics import (average_error, kendall_tau,
                                relative_error, weighted_error)


class TestRelativeError:
    def test_exact_prediction(self):
        assert relative_error(10.0, 10.0) == 0.0

    def test_symmetric_in_absolute_terms(self):
        assert relative_error(15.0, 10.0) == pytest.approx(0.5)
        assert relative_error(5.0, 10.0) == pytest.approx(0.5)

    def test_normalised_by_measured(self):
        assert relative_error(2.0, 1.0) == 1.0
        assert relative_error(2.0, 4.0) == 0.5

    def test_zero_measured_rejected(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)


class TestAggregates:
    def test_average(self):
        pairs = [(11.0, 10.0), (9.0, 10.0)]
        assert average_error(pairs) == pytest.approx(0.1)

    def test_average_empty(self):
        assert average_error([]) is None

    def test_weighted(self):
        triples = [(11.0, 10.0, 9.0), (20.0, 10.0, 1.0)]
        assert weighted_error(triples) == \
            pytest.approx((0.1 * 9 + 1.0 * 1) / 10)

    def test_weighted_zero_weight(self):
        assert weighted_error([(1.0, 1.0, 0.0)]) is None


class TestKendallTau:
    def test_perfect_ordering(self):
        assert kendall_tau([1, 2, 3, 4], [10, 20, 30, 40]) == \
            pytest.approx(1.0)

    def test_reversed_ordering(self):
        assert kendall_tau([4, 3, 2, 1], [10, 20, 30, 40]) == \
            pytest.approx(-1.0)

    def test_short_input(self):
        assert kendall_tau([1.0], [1.0]) is None

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            kendall_tau([1, 2], [1, 2, 3])

    @given(st.lists(st.floats(min_value=0.1, max_value=100,
                              allow_nan=False),
                    min_size=3, max_size=30))
    def test_self_correlation_is_max(self, values):
        tau = kendall_tau(values, values)
        if len(set(values)) > 1:
            assert tau == pytest.approx(1.0)

    @given(st.lists(st.tuples(
        st.floats(min_value=0.1, max_value=100, allow_nan=False),
        st.floats(min_value=0.1, max_value=100, allow_nan=False)),
        min_size=3, max_size=30))
    def test_tau_bounded(self, pairs):
        predicted = [p for p, _ in pairs]
        measured = [m for _, m in pairs]
        tau = kendall_tau(predicted, measured)
        if tau is not None and tau == tau:  # not NaN
            assert -1.0 <= tau <= 1.0


@given(st.floats(min_value=0.01, max_value=1000, allow_nan=False),
       st.floats(min_value=0.01, max_value=1000, allow_nan=False))
def test_relative_error_nonnegative(predicted, measured):
    assert relative_error(predicted, measured) >= 0.0
