"""The cached experiment pipeline."""

import os

import pytest

from repro.eval.pipeline import Experiment, default_experiment


@pytest.fixture()
def tiny(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
    return Experiment(scale=0.0003, seed=9)


class TestLaziness:
    def test_corpus_built_once(self, tiny):
        assert tiny.corpus is tiny.corpus

    def test_models_are_the_papers_four(self, tiny):
        names = {m.name for m in tiny.models}
        assert names == {"IACA", "llvm-mca", "Ithemal", "OSACA"}

    def test_classification_covers_corpus(self, tiny):
        assert len(tiny.classification.categories) == len(tiny.corpus)


class TestMeasurementCache:
    def test_disk_cache_roundtrip(self, tiny, tmp_path):
        first = tiny.measured("haswell")
        dirs = [f for f in os.listdir(tmp_path)
                if f.startswith("measured_v3_")]
        assert dirs == ["measured_v3_main_haswell_9"]
        assert os.listdir(tmp_path / dirs[0])  # per-shard entries
        # A fresh experiment object reads the cache instead of
        # re-simulating.
        again = Experiment(scale=0.0003, seed=9)
        assert again.measured("haswell") == first
        assert again.funnel("haswell") == tiny.funnel("haswell")

    def test_cache_keyed_by_shard_content(self, tiny, tmp_path):
        """v3 keys shard files by content digest: a different corpus
        (different scale) adds new shard entries to the same
        (tag, uarch, seed) directory instead of matching stale ones."""
        tiny.measured("haswell")
        shard_dir = tmp_path / "measured_v3_main_haswell_9"
        before = set(os.listdir(shard_dir))
        other = Experiment(scale=0.0004, seed=9)
        other.measured("haswell")
        after = set(os.listdir(shard_dir))
        assert after - before  # new content -> new shard entries

    def test_grown_corpus_reprofiles_only_new_shards(self, tiny,
                                                     tmp_path):
        """Incremental invalidation: appending shard-aligned blocks
        leaves existing shard entries valid, so a re-run only
        profiles the tail."""
        from repro.corpus.dataset import Corpus, build_application

        records = build_application("llvm", count=40, seed=9).records
        base = Corpus(records[:30])
        grown = Corpus(records)  # base + one more 10-block shard

        first = Experiment(scale=0.0003, seed=9, shard_size=10)
        measured_base = first.measured("haswell", corpus=base)
        shard_dir = tmp_path / "measured_v3_main_haswell_9"
        before = {name for name in os.listdir(shard_dir)
                  if name.startswith("shard_")}
        assert len(before) == 3
        # The always-on run journal lives next to the shard files.
        assert "journal.ndjson" in os.listdir(shard_dir)

        second = Experiment(scale=0.0003, seed=9, shard_size=10)
        measured_grown = second.measured("haswell", corpus=grown)
        after = {name for name in os.listdir(shard_dir)
                 if name.startswith("shard_")}
        # Every pre-existing shard entry was reused verbatim; only
        # the appended shard produced a new entry.
        assert before <= after
        assert len(after - before) == 1
        for block_id, value in measured_base.items():
            assert measured_grown[block_id] == value

    def test_measured_jobs_override_is_bit_identical(self, tiny,
                                                     tmp_path):
        serial = tiny.measured("haswell")
        import shutil
        shutil.rmtree(tmp_path / "measured_v3_main_haswell_9")
        fresh = Experiment(scale=0.0003, seed=9)
        parallel = fresh.measured("haswell", jobs=2)
        assert parallel == serial
        assert fresh.funnel("haswell") == tiny.funnel("haswell")

    def test_validation_cached_per_uarch(self, tiny):
        val = tiny.validation("haswell")
        assert tiny.validation("haswell") is val
        assert val.rows


class TestGoogle:
    def test_google_validation_excludes_osaca(self, tiny):
        val = tiny.google_validation("spanner")
        assert "OSACA" not in val.model_names
        assert val.rows

    def test_google_corpora_both_apps(self, tiny):
        assert set(tiny.google_corpora) == {"spanner", "dremel"}


def test_default_experiment_is_shared():
    assert default_experiment(0.0003, 99) is \
        default_experiment(0.0003, 99)
