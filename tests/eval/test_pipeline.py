"""The cached experiment pipeline."""

import os

import pytest

from repro.eval.pipeline import Experiment, default_experiment


@pytest.fixture()
def tiny(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
    return Experiment(scale=0.0003, seed=9)


class TestLaziness:
    def test_corpus_built_once(self, tiny):
        assert tiny.corpus is tiny.corpus

    def test_models_are_the_papers_four(self, tiny):
        names = {m.name for m in tiny.models}
        assert names == {"IACA", "llvm-mca", "Ithemal", "OSACA"}

    def test_classification_covers_corpus(self, tiny):
        assert len(tiny.classification.categories) == len(tiny.corpus)


class TestMeasurementCache:
    def test_disk_cache_roundtrip(self, tiny, tmp_path):
        first = tiny.measured("haswell")
        files = [f for f in os.listdir(tmp_path)
                 if f.startswith("measured_")]
        assert len(files) == 1
        # A fresh experiment object reads the cache instead of
        # re-simulating.
        again = Experiment(scale=0.0003, seed=9)
        assert again.measured("haswell") == first

    def test_cache_keyed_by_corpus_content(self, tiny, tmp_path):
        tiny.measured("haswell")
        other = Experiment(scale=0.0004, seed=9)
        other.measured("haswell")
        files = [f for f in os.listdir(tmp_path)
                 if f.startswith("measured_")]
        assert len(files) == 2

    def test_validation_cached_per_uarch(self, tiny):
        val = tiny.validation("haswell")
        assert tiny.validation("haswell") is val
        assert val.rows


class TestGoogle:
    def test_google_validation_excludes_osaca(self, tiny):
        val = tiny.google_validation("spanner")
        assert "OSACA" not in val.model_names
        assert val.rows

    def test_google_corpora_both_apps(self, tiny):
        assert set(tiny.google_corpora) == {"spanner", "dremel"}


def test_default_experiment_is_shared():
    assert default_experiment(0.0003, 99) is \
        default_experiment(0.0003, 99)
