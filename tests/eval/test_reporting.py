"""Text renderers for tables and figures."""

from repro.eval.reporting import (bar_chart, format_table,
                                  grouped_bar_chart, schedule_diagram,
                                  side_by_side)
from repro.uarch.scheduler import UopRecord


class TestFormatTable:
    def test_alignment_and_headers(self):
        out = format_table(["name", "value"],
                           [("alpha", 1.5), ("b", 20.0)],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "alpha" in out and "20.0" in out

    def test_none_rendered_as_dash(self):
        out = format_table(["m"], [(None,)])
        assert "-" in out.splitlines()[-1]

    def test_float_formatting(self):
        out = format_table(["x"], [(0.1234567,)])
        assert "0.1235" in out


class TestBarCharts:
    def test_bars_scale_with_values(self):
        out = bar_chart({"a": 1.0, "b": 2.0})
        bar_a = out.splitlines()[0].count("#")
        bar_b = out.splitlines()[1].count("#")
        assert bar_b > bar_a

    def test_none_value(self):
        out = bar_chart({"a": None, "b": 1.0})
        assert "| -" in out

    def test_grouped(self):
        out = grouped_bar_chart({
            "llvm": {"IACA": 0.1, "OSACA": 0.4},
            "gzip": {"IACA": 0.2, "OSACA": None},
        }, title="per-app")
        assert "llvm:" in out and "gzip:" in out
        assert out.count("IACA") == 2

    def test_empty_chart(self):
        assert bar_chart({}, title="x") == "x"


class TestScheduleDiagram:
    def test_dispatch_and_execution_marks(self):
        records = [
            UopRecord(0, 0, "add", "compute", 0, 2, 5),
            UopRecord(1, 1, "mov", "load", 2, 0, 4),
        ]
        out = schedule_diagram(records, n_instructions=2,
                               max_cycles=10)
        add_line = next(line for line in out.splitlines()
                        if line.startswith("add"))
        assert add_line.count("D") == 1
        assert "=" in add_line

    def test_truncates_past_max_cycles(self):
        records = [UopRecord(0, 0, "add", "compute", 0, 100, 105)]
        out = schedule_diagram(records, 1, max_cycles=10)
        assert "D" not in out.replace("cycle", "")


class TestSideBySide:
    def test_paper_vs_ours(self):
        out = side_by_side({"IACA": 0.18}, {"IACA": 0.17},
                           title="Table V")
        assert "0.1800" in out and "0.1700" in out

    def test_missing_ours(self):
        out = side_by_side({"x": 1.0}, {})
        assert "-" in out.splitlines()[-1]
