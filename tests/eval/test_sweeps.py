"""Methodology parameter sweeps."""

import pytest

from repro.eval.sweeps import (stability_table, sweep_naive_unroll,
                               sweep_unroll_pairs)
from repro.isa.parser import parse_block


@pytest.fixture(scope="module")
def chain_block():
    return parse_block("mulps %xmm0, %xmm1\nmulps %xmm1, %xmm2")


class TestTwoFactorStability:
    def test_any_steady_pair_gives_same_throughput(self, chain_block):
        points = sweep_unroll_pairs(
            chain_block, [(8, 16), (16, 32), (12, 28), (20, 40)])
        values = {p.throughput for p in points}
        assert len(values) == 1  # Eq. 2 is pair-invariant

    def test_failure_reported_when_factor_overflows_icache(self):
        big = parse_block("\n".join(
            f"add $1, %r{8 + k % 8}" for k in range(100)))
        points = sweep_unroll_pairs(big, [(8, 16), (60, 120)])
        assert points[0].throughput is not None
        assert points[1].throughput is None
        assert points[1].failure == "l1i_cache_miss"


class TestNaiveBias:
    def test_bias_decreases_with_unroll(self, chain_block):
        points = sweep_naive_unroll(chain_block, [4, 8, 16, 64])
        values = [p.throughput for p in points]
        assert all(v is not None for v in values)
        # Monotone approach from above to the steady state.
        assert values == sorted(values, reverse=True)
        assert values[0] > values[-1]

    def test_converges_to_two_factor_answer(self, chain_block):
        naive = sweep_naive_unroll(chain_block, [100])[0].throughput
        pair = sweep_unroll_pairs(chain_block, [(16, 32)])[0].throughput
        assert naive == pytest.approx(pair, rel=0.05)


def test_stability_table_view(chain_block):
    points = sweep_naive_unroll(chain_block, [8, 16])
    table = stability_table(points)
    assert set(table) == {(8,), (16,)}
