"""Cost-model tuning from measured data."""

import pytest

from repro.eval.tuning import TunedModel, tune
from repro.models import LlvmMcaModel
from repro.profiler import BasicBlockProfiler
from repro.uarch import Machine


@pytest.fixture(scope="module")
def measured_fp_blocks():
    """FP-heavy blocks where llvm-mca's stale Skylake table hurts."""
    from repro.isa.parser import parse_block
    texts = [
        "addss %xmm1, %xmm0",
        "mulps %xmm1, %xmm0",
        "addps %xmm1, %xmm0\nmulps %xmm3, %xmm2",
        "vfmadd231ps %xmm1, %xmm2, %xmm0",
        "mulsd %xmm1, %xmm0\naddsd %xmm3, %xmm2",
        "vmulps %ymm1, %ymm2, %ymm0\nvaddps %ymm0, %ymm3, %ymm3",
        "cmove %rbx, %rax\ncmp %rcx, %rdx",
        "addps %xmm1, %xmm0\naddps %xmm3, %xmm2\naddps %xmm5, %xmm4",
    ]
    profiler = BasicBlockProfiler(Machine("skylake"))
    blocks, values = [], []
    for text in texts:
        block = parse_block(text)
        result = profiler.profile(block)
        assert result.ok
        blocks.append(block)
        values.append(result.throughput)
    return blocks, values


class TestTune:
    def test_reduces_error_on_stale_classes(self, measured_fp_blocks):
        blocks, values = measured_fp_blocks
        tuned, report = tune(LlvmMcaModel(), blocks, values,
                             "skylake", max_classes=6,
                             sample_per_class=8)
        assert report.error_after <= report.error_before
        assert report.error_after < report.error_before - 0.01

    def test_report_names_adjusted_classes(self, measured_fp_blocks):
        blocks, values = measured_fp_blocks
        _, report = tune(LlvmMcaModel(), blocks, values, "skylake",
                         max_classes=6, sample_per_class=8)
        adjusted = {a.timing_class for a in report.adjustments}
        # The stale Skylake FP classes are what tuning repairs.
        assert adjusted & {"fp_add", "fp_mul", "fma", "cmov"}

    def test_base_model_untouched(self, measured_fp_blocks):
        blocks, values = measured_fp_blocks
        base = LlvmMcaModel()
        before = base.predict_safe(blocks[0], "skylake").throughput
        tune(base, blocks, values, "skylake", max_classes=3,
             sample_per_class=4)
        assert base.predict_safe(blocks[0], "skylake").throughput \
            == before

    def test_tuned_model_is_usable_model(self, measured_fp_blocks):
        blocks, values = measured_fp_blocks
        tuned, _ = tune(LlvmMcaModel(), blocks, values, "skylake",
                        max_classes=3, sample_per_class=4)
        assert tuned.name == "llvm-mca+tuned"
        pred = tuned.predict_safe(blocks[0], "skylake")
        assert pred.ok and pred.throughput > 0

    def test_identity_scales_change_nothing(self, measured_fp_blocks):
        blocks, _ = measured_fp_blocks
        base = LlvmMcaModel()
        identity = TunedModel(base, {})
        for block in blocks[:3]:
            assert identity.simulate(block, "skylake")[0] == \
                base.simulate(block, "skylake")[0]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            tune(LlvmMcaModel(), [], [1.0], "skylake")
