"""The §V validation protocol."""

import pytest

from repro.corpus import build_application
from repro.eval.validation import (ValidationRow, profile_corpus,
                                   validate)
from repro.models import IacaModel, IthemalModel, OsacaModel


@pytest.fixture(scope="module")
def tiny_corpus():
    return build_application("llvm", count=80, seed=21)


@pytest.fixture(scope="module")
def result(tiny_corpus):
    models = [IacaModel(), IthemalModel(), OsacaModel()]
    return validate(tiny_corpus, "haswell", models, seed=1)


class TestValidate:
    def test_rows_only_for_profiled_blocks(self, result, tiny_corpus):
        assert 0 < len(result.rows) < len(tiny_corpus)
        assert result.profiled_fraction > 0.8

    def test_all_models_predicted(self, result):
        assert set(result.model_names) == {"IACA", "Ithemal", "OSACA"}
        for row in result.rows:
            assert set(row.predictions) == set(result.model_names)

    def test_ithemal_trained_during_validation(self, result):
        assert result.coverage("Ithemal") == 1.0

    def test_overall_errors_positive(self, result):
        for model in result.model_names:
            error = result.overall_error(model)
            assert error is not None and error > 0

    def test_train_eval_split_disjoint(self, tiny_corpus):
        models = [IthemalModel()]
        res = validate(tiny_corpus, "haswell", models, seed=1,
                       train_fraction=0.5)
        # Evaluation rows are roughly half of the usable blocks.
        assert len(res.rows) < len(tiny_corpus) * 0.7

    def test_per_application_grouping(self, result):
        per_app = result.per_application_error("IACA")
        assert set(per_app) == {"llvm"}

    def test_per_category_grouping(self, tiny_corpus):
        categories = {r.block_id: (r.block_id % 6) + 1
                      for r in tiny_corpus}
        res = validate(tiny_corpus, "haswell", [IacaModel()],
                       categories=categories, seed=1)
        groups = res.per_category_error("IACA")
        assert set(groups) <= set(range(1, 7))

    def test_kendall_tau_reasonable(self, result):
        tau = result.kendall_tau("IACA")
        assert 0.3 < tau <= 1.0

    def test_weighted_error_differs_from_unweighted(self, result):
        w = result.weighted_overall_error("IACA")
        u = result.overall_error("IACA")
        assert w is not None and u is not None


class TestProfileCorpus:
    def test_returns_only_successes(self, tiny_corpus):
        measured = profile_corpus(tiny_corpus, "haswell", seed=1)
        ids = {r.block_id for r in tiny_corpus}
        assert set(measured) <= ids
        assert all(v > 0 for v in measured.values())


class TestValidationRowApi:
    def test_coverage_counts_missing_predictions(self):
        from repro.eval.validation import ValidationResult
        rows = [
            ValidationRow(0, "a", 1, None, 2.0, {"M": 1.0}),
            ValidationRow(1, "a", 1, None, 2.0, {"M": None}),
        ]
        res = ValidationResult("haswell", rows, 1.0, ["M"])
        assert res.coverage("M") == 0.5
        # Errors computed only over rows with predictions.
        assert res.overall_error("M") == pytest.approx(0.5)
