"""Pseudo-encoder: realistic, deterministic instruction lengths."""

from hypothesis import given, settings, strategies as st

from repro.corpus import BlockSynthesizer, get_spec
from repro.isa import block_length, instruction_length, parse_instruction
from repro.isa.parser import parse_block


class TestLengths:
    def test_simple_alu_is_short(self):
        assert instruction_length(
            parse_instruction("add %ebx, %eax")) <= 3

    def test_rex_adds_a_byte(self):
        short = instruction_length(parse_instruction("add %ebx, %eax"))
        wide = instruction_length(parse_instruction("add %rbx, %rax"))
        assert wide == short + 1

    def test_disp8_vs_disp32(self):
        near = instruction_length(parse_instruction("mov 8(%rax), %rbx"))
        far = instruction_length(
            parse_instruction("mov 0x1000(%rax), %rbx"))
        assert far == near + 3

    def test_vex_prefix_counted(self):
        sse = instruction_length(parse_instruction("addps %xmm1, %xmm0"))
        avx = instruction_length(
            parse_instruction("vaddps %ymm1, %ymm2, %ymm0"))
        assert avx >= sse

    def test_immediate_sizes(self):
        small = instruction_length(parse_instruction("add $1, %eax"))
        big = instruction_length(parse_instruction("add $0x12345, %eax"))
        assert big > small

    def test_block_length_is_sum(self):
        blk = parse_block("add %rbx, %rax\nnop")
        assert block_length(blk) == sum(
            instruction_length(i) for i in blk)


@st.composite
def synthesized_instruction(draw):
    app = draw(st.sampled_from(["llvm", "tensorflow", "ffmpeg"]))
    seed = draw(st.integers(min_value=0, max_value=300))
    synth = BlockSynthesizer(get_spec(app), seed=seed)
    blk = synth.block()
    idx = draw(st.integers(min_value=0, max_value=len(blk) - 1))
    return blk[idx]


@given(synthesized_instruction())
@settings(max_examples=80, deadline=None)
def test_lengths_in_valid_x86_range(instr):
    length = instruction_length(instr)
    assert 1 <= length <= 15


@given(synthesized_instruction())
@settings(max_examples=30, deadline=None)
def test_lengths_deterministic(instr):
    assert instruction_length(instr) == instruction_length(instr)
