"""Instruction dataflow derivation: reads, writes, widths, idioms."""

import pytest

from repro.errors import AsmSyntaxError
from repro.isa import Imm, Instruction, Mem, parse_instruction
from repro.isa.instruction import BasicBlock, block
from repro.isa.registers import lookup


def _bases(regs):
    return {r.base for r in regs}


class TestDataflow:
    def test_add_reads_both_writes_dst(self):
        instr = parse_instruction("add %rbx, %rax")
        assert _bases(instr.regs_read) == {"rax", "rbx"}
        assert _bases(instr.regs_written) == {"rax"}

    def test_mov_reads_only_src(self):
        instr = parse_instruction("mov %rbx, %rax")
        assert _bases(instr.regs_read) == {"rbx"}

    def test_memory_address_registers_read(self):
        instr = parse_instruction("mov 8(%rdi, %rsi, 2), %rax")
        assert _bases(instr.regs_read) == {"rdi", "rsi"}

    def test_store_reads_value_and_address(self):
        instr = parse_instruction("mov %rax, (%rdi)")
        assert _bases(instr.regs_read) == {"rax", "rdi"}
        assert instr.regs_written == ()

    def test_div_implicit_operands(self):
        instr = parse_instruction("div %ecx")
        assert {"rax", "rdx"} <= _bases(instr.regs_read)
        assert _bases(instr.regs_written) == {"rax", "rdx"}

    def test_cdq_implicit(self):
        instr = parse_instruction("cdq")
        assert _bases(instr.regs_read) == {"rax"}
        assert _bases(instr.regs_written) == {"rdx"}

    def test_push_pop_rsp(self):
        push = parse_instruction("push %rbx")
        pop = parse_instruction("pop %rbx")
        assert "rsp" in _bases(push.regs_read)
        assert "rsp" in _bases(push.regs_written)
        assert "rbx" in _bases(pop.regs_written)

    def test_xchg_reads_and_writes_both(self):
        instr = parse_instruction("xchg %rax, %rbx")
        assert _bases(instr.regs_read) == {"rax", "rbx"}
        assert _bases(instr.regs_written) == {"rax", "rbx"}

    def test_cmov_reads_flags(self):
        instr = parse_instruction("cmove %rbx, %rax")
        assert instr.info.reads_flags

    def test_imul_one_operand(self):
        instr = parse_instruction("imul %rbx")
        assert _bases(instr.regs_written) == {"rax", "rdx"}


class TestZeroIdioms:
    def test_xor_same_register(self):
        instr = parse_instruction("xor %eax, %eax")
        assert instr.is_zero_idiom
        assert instr.regs_read == ()
        assert _bases(instr.regs_read_raw) == {"rax"}

    def test_xor_different_registers(self):
        assert not parse_instruction("xor %ebx, %eax").is_zero_idiom

    def test_vex_zero_idiom(self):
        assert parse_instruction(
            "vxorps %xmm2, %xmm2, %xmm2").is_zero_idiom

    def test_vex_non_idiom(self):
        assert not parse_instruction(
            "vxorps %xmm1, %xmm2, %xmm3").is_zero_idiom

    def test_sub_idiom(self):
        assert parse_instruction("sub %rax, %rax").is_zero_idiom

    def test_add_is_never_idiom(self):
        assert not parse_instruction("add %rax, %rax").is_zero_idiom


class TestMemoryProperties:
    def test_lea_is_not_a_memory_access(self):
        instr = parse_instruction("lea 8(%rax), %rbx")
        assert not instr.has_memory_access
        assert not instr.loads_memory
        assert not instr.stores_memory

    def test_load_flags(self):
        instr = parse_instruction("mov (%rax), %rbx")
        assert instr.loads_memory and not instr.stores_memory

    def test_store_flags(self):
        instr = parse_instruction("mov %rbx, (%rax)")
        assert instr.stores_memory and not instr.loads_memory

    def test_rmw_is_both(self):
        instr = parse_instruction("add %rbx, (%rax)")
        assert instr.loads_memory and instr.stores_memory

    def test_push_pop_access_memory(self):
        assert parse_instruction("push %rax").has_memory_access
        assert parse_instruction("pop %rax").has_memory_access

    @pytest.mark.parametrize("text,width", [
        ("movss (%rax), %xmm0", 4),
        ("movsd (%rax), %xmm0", 8),
        ("movaps (%rax), %xmm0", 16),
        ("vmovups (%rax), %ymm0", 32),
        ("addss (%rax), %xmm0", 4),
        ("addps (%rax), %xmm0", 16),
        ("mov (%rax), %rbx", 8),
        ("movzbl (%rax), %ebx", 1),
        ("vbroadcastss (%rax), %ymm0", 4),
    ])
    def test_memory_access_width(self, text, width):
        assert parse_instruction(text).memory_access_width == width


class TestBlockProperties:
    def test_feature_levels(self):
        assert block("add %rbx, %rax").feature_level == 0
        assert block("addps %xmm1, %xmm0").feature_level == 1
        assert block("vaddps %ymm1, %ymm2, %ymm3").feature_level == 2
        assert block("vpaddd %ymm1, %ymm2, %ymm3").uses_avx2_or_fma
        assert block(
            "vfmadd231ps %ymm1, %ymm2, %ymm3").uses_avx2_or_fma

    def test_avx1_not_excluded_from_ivb(self):
        assert not block("vaddps %ymm1, %ymm2, %ymm3").uses_avx2_or_fma

    def test_is_supported(self):
        assert block("add %rbx, %rax").is_supported
        assert not block("cpuid").is_supported

    def test_block_equality_and_hash(self):
        a = block("add %rbx, %rax")
        b = block("add %rbx, %rax")
        assert a == b
        assert hash(a) == hash(b)

    def test_arity_checked(self):
        with pytest.raises(AsmSyntaxError):
            Instruction("add", (lookup("rax"),))

    def test_form_signature(self):
        assert parse_instruction("xor al, [rdi - 1]").form == "rm"
        assert parse_instruction("add rax, 4").form == "ri"

    def test_byte_length_positive(self):
        b = block("add $1, %rdi", "xor -1(%rdi), %al")
        assert b.byte_length >= 2

    def test_block_indexing(self):
        b = block("add %rbx, %rax", "nop")
        assert b[1].mnemonic == "nop"
        assert len(list(iter(b))) == 2
