"""Opcode registry invariants."""

import pytest

from repro.errors import UnknownOpcodeError
from repro.isa.opcodes import (CONDITION_CODES, OPCODES, is_known,
                               opcode_info)


class TestRegistry:
    def test_basic_lookup(self):
        info = opcode_info("add")
        assert info.group == "int_alu"
        assert info.writes_flags
        assert info.reads_dst

    def test_unknown_raises(self):
        with pytest.raises(UnknownOpcodeError):
            opcode_info("frobnicate")

    def test_case_insensitive(self):
        assert opcode_info("ADD") is opcode_info("add")

    def test_is_known(self):
        assert is_known("xor")
        assert not is_known("xyzzy")

    def test_registry_size_is_substantial(self):
        # The modelled vocabulary should be a serious x86 subset.
        assert len(OPCODES) > 250


class TestConditionFamilies:
    def test_all_cmov_variants_exist(self):
        for cc in CONDITION_CODES:
            assert is_known(f"cmov{cc}")
            assert is_known(f"set{cc}")

    def test_cc_recorded(self):
        assert opcode_info("cmovle").cc == "le"
        assert opcode_info("setnz").cc == "nz"


class TestSemanticsFlags:
    def test_mov_is_not_rmw(self):
        assert not opcode_info("mov").reads_dst

    def test_cmp_does_not_write(self):
        assert not opcode_info("cmp").writes_dst
        assert opcode_info("cmp").writes_flags

    def test_zero_idiom_flags(self):
        assert opcode_info("xor").zero_idiom
        assert opcode_info("pxor").zero_idiom
        assert opcode_info("vxorps").zero_idiom
        assert not opcode_info("add").zero_idiom

    def test_unsupported_instructions(self):
        assert opcode_info("syscall").unsupported
        assert opcode_info("cpuid").unsupported
        assert not opcode_info("add").unsupported


class TestVexVariants:
    def test_vex_forms_generated(self):
        assert is_known("vaddps")
        assert is_known("vmovaps")
        assert is_known("vpxor")

    def test_vex_is_non_destructive(self):
        legacy = opcode_info("addps")
        vex = opcode_info("vaddps")
        assert legacy.reads_dst
        assert not vex.reads_dst
        assert 3 in vex.arity

    def test_vex_feature_level(self):
        assert opcode_info("vaddps").feature == "avx"
        assert opcode_info("vfmadd231ps").feature == "fma"
        assert opcode_info("vpbroadcastd").feature == "avx2"

    def test_fma_forms(self):
        for order in ("132", "213", "231"):
            assert is_known(f"vfmadd{order}ps")
            assert is_known(f"vfnmadd{order}sd")


class TestInvariants:
    def test_every_opcode_has_positive_arity_options(self):
        for name, info in OPCODES.items():
            assert info.arity, name
            assert all(a >= 0 for a in info.arity), name

    def test_semantic_defaults_to_group(self):
        assert opcode_info("lea").semantic == "lea"

    def test_fp_annotation_consistency(self):
        for name, info in OPCODES.items():
            if info.fp is not None:
                assert info.fp in ("f32", "f64"), name
                assert info.vec or info.unsupported, name
