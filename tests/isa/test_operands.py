"""Operand types: immediates and memory references."""

import pytest

from repro.isa.operands import (Imm, Mem, is_imm, is_mem, is_reg,
                                operand_kind)
from repro.isa.registers import lookup


class TestImm:
    def test_value(self):
        assert Imm(5).value == 5
        assert Imm(-1).value == -1

    def test_equality(self):
        assert Imm(5) == Imm(5)
        assert Imm(5) != Imm(6)


class TestMem:
    def test_full_form(self):
        mem = Mem(base=lookup("rax"), index=lookup("rbx"), scale=8,
                  disp=0x10, width=8)
        assert mem.base.name == "rax"
        assert mem.scale == 8

    def test_registers_property(self):
        mem = Mem(base=lookup("rax"), index=lookup("rbx"))
        assert [r.name for r in mem.registers] == ["rax", "rbx"]
        assert Mem(disp=0x1000).registers == []

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            Mem(base=lookup("rax"), scale=3)

    @pytest.mark.parametrize("width", [1, 2, 4, 8, 16, 32])
    def test_valid_widths(self, width):
        assert Mem(base=lookup("rax"), width=width).width == width

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            Mem(base=lookup("rax"), width=3)


class TestPredicates:
    def test_kinds(self):
        assert operand_kind(lookup("rax")) == "r"
        assert operand_kind(Imm(1)) == "i"
        assert operand_kind(Mem(base=lookup("rax"))) == "m"

    def test_predicates(self):
        assert is_reg(lookup("rax"))
        assert is_imm(Imm(0))
        assert is_mem(Mem(disp=0x2000))
        assert not is_reg(Imm(0))

    def test_operand_kind_rejects_junk(self):
        with pytest.raises(TypeError):
            operand_kind("rax")
