"""Assembly parsing: AT&T and Intel syntax, both paper examples."""

import pytest

from repro.errors import AsmSyntaxError
from repro.isa import (Imm, Mem, parse_block, parse_instruction)
from repro.isa.registers import lookup


class TestAttSyntax:
    def test_operand_order_reversed(self):
        instr = parse_instruction("mov %edx, %eax")
        assert instr.operands[0].name == "eax"  # dst first internally
        assert instr.operands[1].name == "edx"

    def test_immediate(self):
        instr = parse_instruction("add $1, %rdi")
        assert instr.operands == (lookup("rdi"), Imm(1))

    def test_hex_immediate(self):
        instr = parse_instruction("shr $0x8, %rdx")
        assert instr.operands[1] == Imm(8)

    def test_memory_base_disp(self):
        instr = parse_instruction("xor -1(%rdi), %al")
        mem = instr.operands[1]
        assert mem.base.name == "rdi"
        assert mem.disp == -1
        assert mem.width == 1  # sized from %al

    def test_memory_index_no_base(self):
        instr = parse_instruction("xor 0x4110a(, %rax, 8), %rdx")
        mem = instr.operands[1]
        assert mem.base is None
        assert mem.index.name == "rax"
        assert mem.scale == 8
        assert mem.disp == 0x4110A

    def test_full_addressing(self):
        instr = parse_instruction("lea 0x10(%rax, %rbx, 4), %rcx")
        mem = instr.operands[1]
        assert (mem.base.name, mem.index.name, mem.scale, mem.disp) == \
            ("rax", "rbx", 4, 0x10)

    def test_suffix_stripping(self):
        assert parse_instruction("addl $5, %ecx").mnemonic == "add"
        assert parse_instruction("movq %rax, %rbx").mnemonic == "mov"

    def test_suffix_sets_memory_width(self):
        instr = parse_instruction("addl $5, 8(%rsp)")
        assert instr.operands[0].width == 4

    def test_movzbl(self):
        instr = parse_instruction("movzbl (%rdi), %eax")
        assert instr.mnemonic == "movzx"
        assert instr.operands[1].width == 1

    def test_movslq(self):
        instr = parse_instruction("movslq (%rdi), %rax")
        assert instr.mnemonic == "movsxd"
        assert instr.operands[1].width == 4

    def test_movzx_bare_form(self):
        instr = parse_instruction("movzx %al, %eax")
        assert instr.mnemonic == "movzx"

    def test_sse_mnemonic_with_q_suffix_kept(self):
        instr = parse_instruction("movq %rax, %xmm0")
        assert instr.mnemonic == "movq"
        assert instr.operands[0].name == "xmm0"

    def test_no_operands(self):
        assert parse_instruction("nop").mnemonic == "nop"

    def test_vex_three_operand(self):
        instr = parse_instruction("vaddps %ymm1, %ymm2, %ymm3")
        names = [op.name for op in instr.operands]
        assert names == ["ymm3", "ymm2", "ymm1"]


class TestIntelSyntax:
    def test_basic(self):
        instr = parse_instruction("xor edx, edx")
        assert instr.mnemonic == "xor"
        assert instr.operands[0].name == "edx"

    def test_memory(self):
        instr = parse_instruction("xor al, [rdi - 1]")
        mem = instr.operands[1]
        assert mem.base.name == "rdi"
        assert mem.disp == -1
        assert mem.width == 1

    def test_scaled_index(self):
        instr = parse_instruction("xor rdx, [8*rax + 0x4110a]")
        mem = instr.operands[1]
        assert mem.index.name == "rax"
        assert mem.scale == 8
        assert mem.disp == 0x4110A

    def test_ptr_width(self):
        instr = parse_instruction("mov qword ptr [rax], 1")
        assert instr.operands[0].width == 8
        instr = parse_instruction("movzx eax, byte ptr [rdi + 4]")
        assert instr.operands[1].width == 1

    def test_three_operand_vex(self):
        instr = parse_instruction("vxorps xmm2, xmm2, xmm2")
        assert len(instr.operands) == 3
        assert instr.is_zero_idiom

    def test_cmpsd_fp_disambiguation(self):
        instr = parse_instruction("cmpsd xmm0, xmm1, 2")
        assert instr.mnemonic == "cmpsd_fp"

    def test_unknown_mnemonic(self):
        with pytest.raises(AsmSyntaxError):
            parse_instruction("bogus eax, ebx")


class TestBlocks:
    def test_paper_crc_block(self):
        block = parse_block("""
            add $1, %rdi
            mov %edx, %eax
            shr $8, %rdx
            xor -1(%rdi), %al
            movzx %al, %eax
            xor 0x4110a(, %rax, 8), %rdx
            cmp %rcx, %rdi
        """)
        assert len(block) == 7
        assert block.has_memory_access

    def test_paper_div_block(self):
        block = parse_block("xor edx, edx\ndiv ecx\ntest edx, edx")
        assert [i.mnemonic for i in block] == ["xor", "div", "test"]

    def test_comments_and_labels_skipped(self):
        block = parse_block("""
            # setup
            loop_start:
            add %rbx, %rax  ; comment
            sub %rcx, %rdx  // another
        """)
        assert len(block) == 2

    def test_empty_block_rejected(self):
        with pytest.raises(AsmSyntaxError):
            parse_block("\n  # nothing\n")

    def test_mixed_syntax(self):
        block = parse_block("add $1, %rdi\nadd rsi, 1")
        assert block[0].mnemonic == block[1].mnemonic == "add"
