"""Printer round-trips, including property tests over generated code."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.corpus import BlockSynthesizer, get_spec
from repro.isa import format_block, format_instruction, parse_block
from repro.isa.parser import parse_instruction

EXAMPLES = [
    "add $1, %rdi",
    "mov %edx, %eax",
    "xor -1(%rdi), %al",
    "xor 0x4110a(, %rax, 8), %rdx",
    "vxorps %xmm2, %xmm2, %xmm2",
    "vfmadd231ps %ymm1, %ymm2, %ymm3",
    "movzx %al, %eax",
    "lea 0x10(%rax, %rbx, 4), %rcx",
    "push %rbp",
    "nop",
    "cmovle %rax, %rbx",
    "movaps %xmm0, 0x40(%rsp)",
]


@pytest.mark.parametrize("text", EXAMPLES)
def test_att_round_trip(text):
    instr = parse_instruction(text)
    again = parse_instruction(format_instruction(instr, "att"))
    assert again == instr


@pytest.mark.parametrize("text", EXAMPLES)
def test_intel_round_trip(text):
    instr = parse_instruction(text)
    again = parse_instruction(format_instruction(instr, "intel"))
    assert again.mnemonic == instr.mnemonic
    assert again.operands == instr.operands


def test_unknown_syntax_rejected():
    instr = parse_instruction("nop")
    with pytest.raises(ValueError):
        format_instruction(instr, "gas")


@st.composite
def synthesized_blocks(draw):
    app = draw(st.sampled_from(["llvm", "openblas", "ffmpeg", "gzip"]))
    seed = draw(st.integers(min_value=0, max_value=500))
    synth = BlockSynthesizer(get_spec(app), seed=seed)
    return synth.block()


@given(synthesized_blocks())
@settings(max_examples=60, deadline=None)
def test_generated_blocks_round_trip_att(block):
    text = format_block(block, syntax="att")
    reparsed = parse_block(text)
    assert reparsed == block


@given(synthesized_blocks())
@settings(max_examples=60, deadline=None)
def test_generated_blocks_round_trip_intel(block):
    # Unsupported pseudo-mnemonics (rep_movsb etc.) have no Intel
    # rendering contract; skip blocks containing them.
    if not block.is_supported:
        return
    text = format_block(block, syntax="intel")
    reparsed = parse_block(text)
    assert [i.mnemonic for i in reparsed] == \
        [i.mnemonic for i in block]
    assert [i.operands for i in reparsed] == \
        [i.operands for i in block]
