"""Register model: names, aliasing, masks."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.registers import (FLAG_NAMES, GPR_BASES, REGISTERS,
                                 Register, gpr, is_register_name, lookup,
                                 xmm, ymm)


class TestRegistry:
    def test_all_gpr_bases_present(self):
        for base in GPR_BASES:
            assert REGISTERS[base].width == 64

    def test_total_gpr_view_count(self):
        views = [r for r in REGISTERS.values() if r.kind == "gpr"]
        # 16 bases x 4 widths + 4 high-byte legacy registers.
        assert len(views) == 16 * 4 + 4

    def test_vector_registers(self):
        assert REGISTERS["xmm0"].width == 128
        assert REGISTERS["ymm0"].width == 256
        assert REGISTERS["xmm5"].base == "ymm5"

    def test_special_registers(self):
        assert REGISTERS["rip"].kind == "ip"
        assert REGISTERS["rflags"].kind == "flags"
        assert REGISTERS["mxcsr"].kind == "mxcsr"

    def test_flag_names(self):
        assert set(FLAG_NAMES) == {"cf", "pf", "af", "zf", "sf", "of"}


class TestAliasing:
    @pytest.mark.parametrize("name,base,width,offset", [
        ("rax", "rax", 64, 0),
        ("eax", "rax", 32, 0),
        ("ax", "rax", 16, 0),
        ("al", "rax", 8, 0),
        ("ah", "rax", 8, 8),
        ("r8d", "r8", 32, 0),
        ("r15b", "r15", 8, 0),
        ("sil", "rsi", 8, 0),
        ("bpl", "rbp", 8, 0),
        ("spl", "rsp", 8, 0),
        ("di", "rdi", 16, 0),
    ])
    def test_gpr_views(self, name, base, width, offset):
        reg = lookup(name)
        assert reg.base == base
        assert reg.width == width
        assert reg.bit_offset == offset

    def test_high_byte_only_for_legacy(self):
        assert is_register_name("bh")
        assert not is_register_name("sih")
        assert not is_register_name("r8h")

    def test_mask(self):
        assert lookup("al").mask == 0xFF
        assert lookup("ah").mask == 0xFF00
        assert lookup("ax").mask == 0xFFFF


class TestAccessors:
    def test_lookup_case_insensitive(self):
        assert lookup("RAX") is lookup("rax")

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            lookup("zax")

    def test_gpr_by_index(self):
        assert gpr(0).name == "rax"
        assert gpr(15).name == "r15"

    def test_xmm_ymm_helpers(self):
        assert xmm(3).name == "xmm3"
        assert ymm(3).name == "ymm3"
        assert xmm(3).base == ymm(3).name

    def test_registers_are_frozen(self):
        with pytest.raises(Exception):
            lookup("rax").width = 32


@given(st.sampled_from(sorted(REGISTERS)))
def test_every_register_roundtrips_through_lookup(name):
    reg = lookup(name)
    assert isinstance(reg, Register)
    assert reg.name == name
    assert reg.base in REGISTERS
    assert REGISTERS[reg.base].bit_offset == 0


@given(st.sampled_from([r for r in REGISTERS.values()
                        if r.kind == "gpr"]))
def test_gpr_view_fits_inside_base(reg):
    base = REGISTERS[reg.base]
    assert reg.bit_offset + reg.width <= base.width
