"""The additive per-instruction cost model."""

import pytest

from repro.isa.parser import parse_block
from repro.models.additive import AdditiveCostModel


@pytest.fixture(scope="module")
def model():
    return AdditiveCostModel()


class TestAdditivity:
    def test_cost_is_sum_of_instruction_costs(self, model):
        one = parse_block("add %rbx, %rax")
        two = parse_block("add %rbx, %rax\nadd %rdx, %rcx")
        p1 = model.predict_safe(one, "haswell").throughput
        p2 = model.predict_safe(two, "haswell").throughput
        assert p2 == pytest.approx(2 * p1, abs=0.02)

    def test_ignores_dependences(self, model):
        chained = parse_block("add %rbx, %rax\nadd %rax, %rax")
        independent = parse_block("add %rbx, %rax\nadd %rdx, %rcx")
        assert model.predict_safe(chained, "haswell").throughput == \
            model.predict_safe(independent, "haswell").throughput

    def test_underpredicts_latency_bound_blocks(self, model):
        from repro.profiler import profile_block
        chain = parse_block("mulps %xmm1, %xmm0")
        measured = profile_block(chain).throughput
        predicted = model.predict_safe(chain, "haswell").throughput
        assert predicted < measured / 3

    def test_calibration_factor(self):
        base = AdditiveCostModel()
        scaled = AdditiveCostModel(calibration=20.0)  # the x20 commit
        block = parse_block("add %rbx, %rax\nadd %rdx, %rcx")
        assert scaled.predict_safe(block, "haswell").throughput == \
            pytest.approx(
                20 * base.predict_safe(block, "haswell").throughput,
                rel=0.05)

    def test_unsupported_instructions_skipped(self, model):
        block = parse_block("add %rbx, %rax\ncpuid")
        pred = model.predict_safe(block, "haswell")
        assert pred.ok  # additive models don't execute anything

    def test_floor(self, model):
        assert model.predict_safe(parse_block("nop"),
                                  "haswell").throughput >= 0.25
