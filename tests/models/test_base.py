"""CostModel interface contract."""

import pytest

from repro.corpus import div_block
from repro.errors import ModelError
from repro.models.base import CostModel, Prediction, predictions_table


class Stub(CostModel):
    name = "stub"

    def predict(self, block, uarch):
        return Prediction(self.name, uarch, 2.0)


class Crashy(CostModel):
    name = "crashy"

    def predict(self, block, uarch):
        raise ModelError("parser exploded")


class TestPrediction:
    def test_ok_flag(self):
        assert Prediction("m", "haswell", 1.0).ok
        assert not Prediction("m", "haswell", None, error="x").ok

    def test_defaults(self):
        pred = Prediction("m", "haswell", 1.0)
        assert pred.schedule is None and pred.error is None


class TestPredictSafe:
    def test_passthrough(self):
        pred = Stub().predict_safe(div_block(), "haswell")
        assert pred.ok and pred.throughput == 2.0

    def test_model_error_becomes_error_prediction(self):
        pred = Crashy().predict_safe(div_block(), "haswell")
        assert not pred.ok
        assert "parser exploded" in pred.error

    def test_supports_default(self):
        assert Stub().supports(div_block(), "haswell")


def test_predictions_table():
    table = predictions_table([Stub(), Crashy()], div_block(),
                              "haswell")
    assert table["stub"].ok
    assert not table["crashy"].ok


def test_cost_model_is_abstract():
    with pytest.raises(TypeError):
        CostModel()
