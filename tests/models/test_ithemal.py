"""The learned model: training protocol and behaviour."""

import numpy as np
import pytest

from repro.models import IthemalModel, TrainingConfig
from repro.models.features import FEATURE_DIM, block_features
from repro.models.training import MlpRegressor
from repro.profiler import BasicBlockProfiler
from repro.uarch import Machine


@pytest.fixture(scope="module")
def trained(small_corpus_module):
    blocks, measured = small_corpus_module
    model = IthemalModel(TrainingConfig(epochs=150))
    model.fit(blocks, measured, "haswell")
    return model, blocks, measured


@pytest.fixture(scope="module")
def small_corpus_module():
    from repro.corpus import build_application
    corpus = build_application("llvm", count=150, seed=11)
    profiler = BasicBlockProfiler(Machine("haswell"))
    blocks, measured = [], []
    for record in corpus:
        result = profiler.profile(record.block)
        if result.ok and result.throughput > 0:
            blocks.append(record.block)
            measured.append(result.throughput)
    return blocks, measured


class TestTrainingProtocol:
    def test_untrained_returns_error(self):
        model = IthemalModel()
        from repro.corpus import div_block
        pred = model.predict_safe(div_block(), "haswell")
        assert not pred.ok
        assert "no trained model" in pred.error

    def test_is_trained_per_uarch(self, trained):
        model, _, _ = trained
        assert model.is_trained("haswell")
        assert not model.is_trained("skylake")

    def test_fit_length_mismatch(self):
        model = IthemalModel()
        with pytest.raises(ValueError):
            model.fit([], [1.0], "haswell")

    def test_reasonable_in_sample_error(self, trained):
        model, blocks, measured = trained
        errors = []
        for block, actual in zip(blocks, measured):
            pred = model.predict_safe(block, "haswell")
            errors.append(abs(pred.throughput - actual) / actual)
        assert sum(errors) / len(errors) < 0.25

    def test_predictions_positive_and_capped(self, trained):
        model, blocks, _ = trained
        for block in blocks[:20]:
            pred = model.predict_safe(block, "haswell")
            assert 0.25 <= pred.throughput < 10_000

    def test_no_interpretable_schedule(self, trained):
        """The paper: Ithemal outputs a single number, no trace."""
        model, blocks, _ = trained
        pred = model.predict_safe(blocks[0], "haswell")
        assert pred.schedule is None

    def test_deterministic(self, trained):
        model, blocks, _ = trained
        a = model.predict_safe(blocks[0], "haswell").throughput
        b = model.predict_safe(blocks[0], "haswell").throughput
        assert a == b


class TestFeatures:
    def test_feature_dim_consistent(self):
        from repro.corpus import div_block
        assert block_features(div_block()).shape == (FEATURE_DIM,)

    def test_features_capture_block_differences(self):
        from repro.isa.parser import parse_block
        a = block_features(parse_block("add %rbx, %rax"))
        b = block_features(parse_block("mulps %xmm1, %xmm0"))
        assert not np.allclose(a, b)

    def test_bound_feature_tracks_chain(self):
        from repro.isa.parser import parse_block
        chained = block_features(parse_block("mulps %xmm1, %xmm0"))
        light = block_features(parse_block("add %rbx, %rax"))
        assert chained[-2] > light[-2]

    def test_zero_idiom_has_no_chain(self):
        from repro.isa.parser import parse_block
        idiom = block_features(
            parse_block("vxorps %xmm2, %xmm2, %xmm2"))
        assert idiom[-2] == pytest.approx(0.25)  # front-end floor


class TestMlpRegressor:
    def test_fits_linear_function(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(400, 5))
        y = x @ np.array([1.0, -2.0, 0.5, 0.0, 3.0]) + 1.0
        net = MlpRegressor(TrainingConfig(epochs=200, hidden=32))
        net.fit(x, y)
        pred = net.predict(x)
        assert np.mean(np.abs(pred - y)) < 0.25

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MlpRegressor().predict(np.zeros((1, 3)))

    def test_training_losses_decrease(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(200, 4))
        y = (x ** 2).sum(axis=1)
        net = MlpRegressor(TrainingConfig(epochs=100))
        net.fit(x, y)
        losses = net.training_losses
        assert losses[-1] < losses[0]

    def test_seeded_determinism(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(100, 3))
        y = x.sum(axis=1)
        a = MlpRegressor(TrainingConfig(epochs=30, seed=5)).fit(x, y)
        b = MlpRegressor(TrainingConfig(epochs=30, seed=5)).fit(x, y)
        assert np.allclose(a.predict(x), b.predict(x))
