"""Residual calibration and model-table perturbation."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.corpus import BlockSynthesizer, get_spec
from repro.isa.parser import parse_block
from repro.models.residual import ResidualSpec, block_mix, residual_factor
from repro.models.tables import (confused_div_table, flat_div_table,
                                 perturbed_table)
from repro.uarch.tables import get_uarch


class TestBlockMix:
    def test_pure_alu(self):
        mix = block_mix(parse_block("add %rbx, %rax\nsub %rcx, %rdx"))
        assert mix["load"] == 0 and mix["vector"] == 0

    def test_fractions(self):
        mix = block_mix(parse_block(
            "mov (%rdi), %rax\nmov %rbx, (%rsi)\n"
            "mulps %xmm1, %xmm0\nshl $1, %rcx"))
        assert mix["load"] == 0.25
        assert mix["store"] == 0.25
        assert mix["vector"] == 0.25
        assert mix["bitmanip"] == 0.25


class TestResidualSpec:
    SPEC = ResidualSpec(base=0.2, store=0.1, load=0.3, vector=0.4,
                        bitmanip=0.05)

    def test_store_blocks_get_smaller_sigma(self):
        stores = parse_block("\n".join(
            f"mov %rax, {8 * i}(%rdi)" for i in range(6)))
        loads = parse_block("\n".join(
            f"mov {8 * i}(%rdi), %rax" for i in range(6)))
        assert self.SPEC.sigma_for(stores) < self.SPEC.sigma_for(loads)

    def test_vector_blocks_get_larger_sigma(self):
        vec = parse_block("\n".join("mulps %xmm1, %xmm0"
                                    for _ in range(6)))
        alu = parse_block("\n".join("add %rbx, %rax" for _ in range(6)))
        assert self.SPEC.sigma_for(vec) > self.SPEC.sigma_for(alu)

    def test_tiny_blocks_get_tiny_sigma(self):
        one = parse_block("add %rbx, %rax")
        six = parse_block("\n".join("add %rbx, %rax" for _ in range(6)))
        assert self.SPEC.sigma_for(one) < self.SPEC.sigma_for(six)

    def test_factor_deterministic(self):
        block = parse_block("add %rbx, %rax\nmov (%rdi), %rcx")
        a = residual_factor(self.SPEC, "IACA", "haswell", block)
        b = residual_factor(self.SPEC, "IACA", "haswell", block)
        assert a == b

    def test_factor_varies_by_model_and_uarch(self):
        block = parse_block("\n".join("add %rbx, %rax"
                                      for _ in range(8)))
        factors = {
            residual_factor(self.SPEC, model, uarch, block)
            for model in ("IACA", "llvm-mca")
            for uarch in ("haswell", "skylake")
        }
        assert len(factors) == 4

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_factor_is_positive_and_bounded(self, seed):
        block = BlockSynthesizer(get_spec("llvm"), seed=seed).block()
        factor = residual_factor(self.SPEC, "m", "haswell", block)
        assert 0.05 < factor < 20.0


class TestTablePerturbation:
    def test_deterministic(self):
        _, base, _ = get_uarch("haswell")
        a = perturbed_table(base, "X", "haswell", sigma=0.2)
        b = perturbed_table(base, "X", "haswell", sigma=0.2)
        assert a == b

    def test_zero_sigma_keeps_ports(self):
        _, base, _ = get_uarch("haswell")
        table = perturbed_table(base, "X", "haswell", sigma=0.0001)
        for cls in base:
            for orig, pert in zip(base[cls].uops, table[cls].uops):
                assert orig.ports == pert.ports

    def test_latencies_stay_positive(self):
        _, base, _ = get_uarch("haswell")
        table = perturbed_table(base, "Y", "haswell", sigma=0.8)
        for entry in table.values():
            for spec in entry.uops:
                assert spec.latency >= 1 and spec.occupancy >= 1

    def test_overrides_win(self):
        _, base, _ = get_uarch("haswell")
        table = perturbed_table(base, "Z", "haswell", sigma=0.5,
                                overrides={"int_alu": base["int_alu"]})
        assert table["int_alu"] == base["int_alu"]


class TestDivTables:
    def test_confused_table_is_uniformly_worst_case(self):
        _, _, div = get_uarch("haswell")
        confused = confused_div_table(div)
        worst = div[(64, False)]
        assert all(spec == worst for spec in confused.values())
        assert confused[(32, True)].latency == worst.latency

    def test_flat_table(self):
        _, _, div = get_uarch("haswell")
        flat = flat_div_table(div, latency=12)
        assert all(spec.latency == 12 for spec in flat.values())
        assert all(spec.occupancy == 12 for spec in flat.values())
