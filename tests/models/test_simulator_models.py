"""IACA / llvm-mca / OSACA analogues: structure and case studies."""

import pytest

from repro.corpus import div_block, gzip_crc_block, zero_idiom_block
from repro.models import (IacaModel, LlvmMcaModel, OsacaModel,
                          predictions_table)
from repro.models import simulator_models
from repro.isa.parser import parse_block


@pytest.fixture(scope="module")
def iaca():
    return IacaModel()


@pytest.fixture(scope="module")
def mca():
    return LlvmMcaModel()


@pytest.fixture(scope="module")
def osaca():
    return OsacaModel()


class TestCaseStudy1Division:
    """Paper: measured 21.62; IACA 98.00, llvm-mca 99.04 (width
    confusion), OSACA 12.25 (optimistic flat entry)."""

    def test_iaca_grossly_overpredicts(self, iaca):
        pred = iaca.predict_safe(div_block(), "haswell")
        assert pred.throughput > 60

    def test_mca_grossly_overpredicts(self, mca):
        pred = mca.predict_safe(div_block(), "haswell")
        assert pred.throughput > 60

    def test_osaca_underpredicts(self, osaca):
        pred = osaca.predict_safe(div_block(), "haswell")
        assert pred.throughput < 18


class TestCaseStudy2ZeroIdiom:
    """Paper: measured 0.25; IACA 0.24, llvm-mca 1.00, OSACA 1.00."""

    def test_iaca_recognises_idiom(self, iaca):
        pred = iaca.predict_safe(zero_idiom_block(), "haswell")
        assert pred.throughput == pytest.approx(0.25, abs=0.05)

    def test_mca_misses_idiom(self, mca):
        pred = mca.predict_safe(zero_idiom_block(), "haswell")
        assert pred.throughput == pytest.approx(1.0, abs=0.15)

    def test_osaca_misses_idiom(self, osaca):
        pred = osaca.predict_safe(zero_idiom_block(), "haswell")
        assert pred.throughput == pytest.approx(1.0, abs=0.15)


class TestCaseStudy3CrcScheduling:
    """Paper: measured 8.25; IACA 8.00, llvm-mca 13.04, OSACA '-'."""

    def test_iaca_close(self, iaca):
        pred = iaca.predict_safe(gzip_crc_block(), "haswell")
        assert pred.throughput == pytest.approx(8.25, rel=0.25)

    def test_mca_overpredicts_by_delaying_the_load(self, iaca, mca):
        block = gzip_crc_block()
        # Structurally (before each tool's table-residual), the fused
        # load-op scheduling costs llvm-mca ~5 cycles/iteration: the
        # paper reports 8.00 vs 13.04.
        iaca_raw, _ = iaca.simulate(block, "haswell")
        mca_raw, _ = mca.simulate(block, "haswell")
        assert iaca_raw == pytest.approx(8.0, abs=0.5)
        assert mca_raw == pytest.approx(13.0, abs=1.0)
        # The final predictions keep the ordering.
        iaca_pred = iaca.predict_safe(block, "haswell").throughput
        mca_pred = mca.predict_safe(block, "haswell").throughput
        assert mca_pred > iaca_pred

    def test_osaca_parser_crashes(self, osaca):
        pred = osaca.predict_safe(gzip_crc_block(), "haswell")
        assert not pred.ok
        assert "parser" in pred.error

    def test_schedule_traces_differ(self, iaca, mca):
        """Fig. 11: IACA dispatches the byte-xor load earlier."""
        block = gzip_crc_block()
        iaca_trace = iaca.schedule_trace(block, "haswell", unroll=3)
        mca_trace = mca.schedule_trace(block, "haswell", unroll=3)
        def last_load(records):
            return max(r.dispatch for r in records
                       if r.kind in ("load", "load_op")
                       and r.slot == 3)
        assert last_load(iaca_trace.records) < \
            last_load(mca_trace.records)


class TestOsacaParserBugs:
    def test_imm_to_mem_treated_as_nop(self, osaca):
        """Bug 1: under-reported throughput for RMW-with-immediate."""
        real = parse_block("addq $1, (%rbx)")
        pred = osaca.predict_safe(real, "haswell")
        rmw_reg = parse_block("addq %rax, (%rbx)")
        pred_reg = osaca.predict_safe(rmw_reg, "haswell")
        assert pred.throughput < pred_reg.throughput

    def test_index_no_base_crashes(self, osaca):
        pred = osaca.predict_safe(
            parse_block("mov 0x1000(, %rax, 8), %rbx"), "haswell")
        assert not pred.ok

    def test_fp_cmp_crashes(self, osaca):
        pred = osaca.predict_safe(
            parse_block("cmpps $2, %xmm1, %xmm0"), "haswell")
        assert not pred.ok

    def test_shift_by_cl_parsed_as_one(self, osaca):
        by_cl = osaca.predict_safe(
            parse_block("shl %cl, %rax"), "haswell")
        assert by_cl.ok  # parses (wrongly) rather than crashing


class TestModelBehaviour:
    def test_all_models_deterministic(self):
        block = parse_block("add (%rdi), %rax\nimul %rbx, %rcx")
        for model in simulator_models():
            a = model.predict_safe(block, "haswell").throughput
            b = model.predict_safe(block, "haswell").throughput
            assert a == b

    def test_models_differ_from_each_other(self):
        block = parse_block(
            "mulps %xmm1, %xmm0\nadd (%rdi), %rax\nshl $3, %rbx")
        preds = {m.name: m.predict_safe(block, "haswell").throughput
                 for m in simulator_models()}
        assert len(set(preds.values())) >= 2

    def test_predictions_table_helper(self):
        table = predictions_table(simulator_models(), div_block(),
                                  "haswell")
        assert set(table) == {"IACA", "llvm-mca", "OSACA"}

    def test_models_work_on_all_uarches(self):
        block = parse_block("add %rbx, %rax\nmov (%rdi), %rcx")
        for model in simulator_models():
            for uarch in ("ivybridge", "haswell", "skylake"):
                pred = model.predict_safe(block, uarch)
                assert pred.ok and pred.throughput > 0

    def test_mca_skylake_regression(self):
        """The stale-Skylake-model effect: mca degrades on SKL more
        than IACA does (Table V's pattern)."""
        from repro.eval.metrics import relative_error
        from repro.profiler import profile_block
        blocks = [
            "addss %xmm1, %xmm0",
            "mulps %xmm1, %xmm0\naddps %xmm3, %xmm2",
            "cmove %rbx, %rax\ncmp %rcx, %rdx",
        ]
        iaca, mca = IacaModel(), LlvmMcaModel()

        def mean_err(model, uarch):
            errors = []
            for text in blocks:
                measured = profile_block(text, uarch).throughput
                predicted = model.predict_safe(
                    parse_block(text), uarch).throughput
                errors.append(relative_error(predicted, measured))
            return sum(errors) / len(errors)

        assert mean_err(mca, "skylake") > mean_err(iaca, "skylake")
