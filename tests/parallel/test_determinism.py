"""Differential determinism suite: parallel profiling is provably safe.

The parallel engine's contract is *bit-for-bit* equivalence with the
serial path — not "statistically close", identical.  For every
microarchitecture and several seed/size configurations, the same
corpus is profiled serially, with a 2-worker pool, and with an
8-worker pool, and the three results are compared byte-for-byte after
JSON serialisation: throughputs (values *and* insertion order),
failure taxonomies, and funnel totals.

A parallelism bug that perturbs even one block's timing, drops a
block, or reorders a funnel bucket fails this suite.
"""

import json

import pytest

from repro.corpus.dataset import build_application
from repro.eval.pipeline import Experiment
from repro.eval.validation import profile_corpus_detailed
from repro.parallel import profile_corpus_sharded

UARCHES = ("ivybridge", "haswell", "skylake")

#: (application, block count, machine seed) — two sizes and two seeds
#: per uarch, with vector-heavy blocks in the mix (openblas) so the
#: AVX2 drop path on Ivy Bridge is exercised too.
CONFIGS = (
    ("llvm", 22, 0),
    ("openblas", 33, 7),
)


def _payload(profile) -> str:
    """Canonical bytes of a profile: order-sensitive on purpose."""
    return json.dumps({"throughputs": profile.throughputs,
                       "funnel": profile.funnel})


@pytest.mark.parametrize("uarch", UARCHES)
@pytest.mark.parametrize("app,count,seed", CONFIGS)
def test_serial_vs_pool_bit_identical(uarch, app, count, seed):
    corpus = build_application(app, count=count, seed=seed)
    serial = profile_corpus_detailed(corpus, uarch, seed=seed)
    jobs2 = profile_corpus_sharded(corpus, uarch, seed=seed,
                                   jobs=2, shard_size=8)
    jobs8 = profile_corpus_sharded(corpus, uarch, seed=seed,
                                   jobs=8, shard_size=4)

    assert _payload(serial) == _payload(jobs2)
    assert _payload(serial) == _payload(jobs8)

    # Failure taxonomy agrees reason by reason.
    assert serial.funnel["dropped"] == jobs2.funnel["dropped"] \
        == jobs8.funnel["dropped"]


@pytest.mark.parametrize("uarch", UARCHES)
def test_funnel_accounts_for_every_block(uarch):
    corpus = build_application("llvm", count=26, seed=4)
    profile = profile_corpus_sharded(corpus, uarch, seed=4,
                                     jobs=2, shard_size=8)
    funnel = profile.funnel
    assert funnel["total"] == len(corpus)
    assert funnel["accepted"] + sum(funnel["dropped"].values()) \
        == len(corpus)
    assert funnel["accepted"] == len(profile.throughputs)


def test_shard_size_does_not_change_results():
    """The shard boundary is an implementation detail, not a timing
    input: any shard size yields the same bytes."""
    corpus = build_application("llvm", count=21, seed=2)
    profiles = [profile_corpus_sharded(corpus, "haswell", seed=2,
                                       jobs=2, shard_size=size)
                for size in (1, 5, 21, 64)]
    payloads = {_payload(p) for p in profiles}
    assert len(payloads) == 1


class TestPipelineFunnelEquality:
    """Acceptance criterion: the Table-I funnel from a ``jobs=4``
    pipeline run equals the serial funnel exactly."""

    SCALE = 0.0001  # ~50 blocks of the full suite, all ten apps

    def _run(self, tmp_path, jobs):
        import os
        cache = tmp_path / f"cache_jobs{jobs}"
        old = os.environ.get("REPRO_CACHE")
        os.environ["REPRO_CACHE"] = str(cache)
        try:
            experiment = Experiment(scale=self.SCALE, seed=7, jobs=jobs)
            measured = experiment.measured("haswell")
            return measured, experiment.funnel("haswell")
        finally:
            if old is None:
                os.environ.pop("REPRO_CACHE", None)
            else:
                os.environ["REPRO_CACHE"] = old

    def test_jobs4_matches_serial_exactly(self, tmp_path):
        serial_measured, serial_funnel = self._run(tmp_path, jobs=1)
        pool_measured, pool_funnel = self._run(tmp_path, jobs=4)
        assert json.dumps(serial_measured) == json.dumps(pool_measured)
        assert json.dumps(serial_funnel) == json.dumps(pool_funnel)
        assert serial_funnel["accepted"] \
            + sum(serial_funnel["dropped"].values()) \
            == serial_funnel["total"]
