"""Fault injection: worker death must degrade, never corrupt.

The stubs below stand in for the real shard worker (they are
module-level so the pool can pickle them by reference).  Three failure
shapes are injected — a clean exception, a hard process death, and a
hang past the shard timeout — and in every case the engine must (a)
retry the shard serially in the parent, (b) fall back to the
``worker_failure`` funnel bucket only if the retry fails too, and
(c) leave the shard cache exactly as correct as before: successful
shards cached atomically, failed shards absent, never a half-written
file.
"""

import json
import os
import time

import pytest

from repro.corpus.dataset import build_application
from repro.eval.validation import CorpusProfile, profile_corpus_detailed
from repro.parallel import (ShardCache, profile_corpus_sharded,
                            shard_corpus)
from repro.profiler.result import FailureReason


# --- picklable worker stubs -------------------------------------------------

def worker_raises(descriptor, config, index, records):
    raise RuntimeError("injected worker exception")


def worker_dies(descriptor, config, index, records):
    os._exit(13)  # hard death: BrokenProcessPool in the parent


def worker_hangs(descriptor, config, index, records):
    time.sleep(120)


def serial_retry_fails(descriptor, config, shard):
    raise RuntimeError("injected retry failure")


# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def corpus():
    return build_application("llvm", count=16, seed=3)


@pytest.fixture(scope="module")
def serial(corpus):
    return profile_corpus_detailed(corpus, "haswell", seed=0)


def _bytes(profile):
    return json.dumps({"t": profile.throughputs, "f": profile.funnel})


@pytest.mark.parametrize("stub", [worker_raises, worker_dies],
                         ids=["exception", "process-death"])
def test_failed_worker_is_retried_serially(corpus, serial, stub):
    stats = {}
    profile = profile_corpus_sharded(corpus, "haswell", seed=0,
                                     jobs=2, shard_size=8,
                                     worker_fn=stub, stats=stats)
    assert _bytes(profile) == _bytes(serial)  # rescue is bit-exact
    assert stats["retried"] == stats["shards"] == 2
    assert stats["failed"] == 0


def test_hanging_worker_times_out_and_is_rescued(corpus, serial):
    stats = {}
    start = time.perf_counter()
    profile = profile_corpus_sharded(corpus, "haswell", seed=0,
                                     jobs=2, shard_size=8,
                                     shard_timeout=1.0,
                                     worker_fn=worker_hangs,
                                     stats=stats)
    assert _bytes(profile) == _bytes(serial)
    assert stats["retried"] == 2
    # The hung workers were terminated, not waited out.
    assert time.perf_counter() - start < 60


def test_double_failure_lands_in_worker_failure_bucket(corpus):
    stats = {}
    profile = profile_corpus_sharded(corpus, "haswell", seed=0,
                                     jobs=2, shard_size=8,
                                     worker_fn=worker_raises,
                                     serial_fn=serial_retry_fails,
                                     stats=stats)
    reason = FailureReason.WORKER_FAILURE.value
    assert profile.throughputs == {}
    assert profile.funnel == {
        "total": len(corpus), "accepted": 0,
        "dropped": {reason: len(corpus)}}
    assert stats["failed"] == 2


class TestCacheIntegrityUnderFailure:
    def test_failed_shards_never_reach_the_cache(self, corpus, tmp_path):
        cache = ShardCache(str(tmp_path))
        profile_corpus_sharded(corpus, "haswell", seed=0, jobs=2,
                               shard_size=8, cache=cache,
                               worker_fn=worker_raises,
                               serial_fn=serial_retry_fails)
        assert cache.shard_files() == []
        assert not any(n.endswith(".tmp") for n in os.listdir(tmp_path))

    def test_rescued_shards_are_cached_correctly(self, corpus, serial,
                                                 tmp_path):
        cache = ShardCache(str(tmp_path))
        profile_corpus_sharded(corpus, "haswell", seed=0, jobs=2,
                               shard_size=8, cache=cache,
                               worker_fn=worker_dies)
        assert len(cache.shard_files()) == 2
        # Cached bytes replay the serial result exactly.
        replay = profile_corpus_sharded(corpus, "haswell", seed=0,
                                        jobs=2, shard_size=8,
                                        cache=cache,
                                        worker_fn=worker_raises,
                                        serial_fn=serial_retry_fails)
        assert _bytes(replay) == _bytes(serial)

    def test_kill_mid_write_leaves_no_visible_entry(self, corpus,
                                                    tmp_path,
                                                    monkeypatch):
        """Atomicity: dying between the temp write and ``os.replace``
        (or mid temp write) must not surface a shard entry."""
        cache = ShardCache(str(tmp_path))
        (shard,) = shard_corpus(corpus.records[:8], 8)
        profile = CorpusProfile(
            throughputs={r.block_id: 1.0 for r in shard.records},
            funnel={"total": 8, "accepted": 8, "dropped": {}})

        # Kill #1: process dies before the rename — only the temp
        # file exists on disk.
        def exploding_replace(src, dst):
            raise KeyboardInterrupt("kill -9 arrives here")
        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(KeyboardInterrupt):
            cache.store(shard, profile)
        monkeypatch.undo()
        assert cache.load(shard) is None
        assert cache.shard_files() == []

        # Kill #2: a truncated temp file left behind by a dead pid is
        # ignored by the loader and never shadows the real entry.
        orphan = cache.path_for(shard) + ".9999.tmp"
        with open(orphan, "w") as fh:
            fh.write('{"version": 3, "truncat')
        assert cache.load(shard) is None

        # A later clean write goes through untouched.
        cache.store(shard, profile)
        assert cache.load(shard) is not None
        loaded = cache.load(shard)
        assert loaded.throughputs == profile.throughputs
        assert loaded.funnel == profile.funnel
