"""Golden regression corpus: simulator timing drift fails loudly.

A small frozen corpus (``tests/data/golden_corpus.json`` — block
*texts*, not generator calls, so corpus synthesis changes cannot move
it) with the exact expected profile per uarch checked in beside it.
Any change to the scheduler, timing tables, cache model, noise
parameters, or acceptance policy that shifts a single throughput or
funnel count fails here with a pointed message.

Intentional timing changes: regenerate with

    PYTHONPATH=src python tests/data/regen_golden.py

and commit the new golden files with the change that moved them.
"""

import json
import os

import pytest

from repro.corpus.dataset import BlockRecord, Corpus
from repro.eval.validation import profile_corpus_detailed
from repro.isa.parser import parse_block
from repro.parallel import profile_corpus_sharded

DATA = os.path.join(os.path.dirname(__file__), "..", "data")
REGEN = "PYTHONPATH=src python tests/data/regen_golden.py"

UARCHES = ("ivybridge", "haswell", "skylake")


def _load_json(name):
    with open(os.path.join(DATA, name)) as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def golden_corpus():
    doc = _load_json("golden_corpus.json")
    records = [BlockRecord(block=parse_block(b["text"]),
                           application=b["application"],
                           frequency=b["frequency"],
                           block_id=b["block_id"])
               for b in doc["blocks"]]
    return doc["seed"], Corpus(records)


@pytest.mark.parametrize("uarch", UARCHES)
def test_profile_matches_golden_exactly(golden_corpus, uarch):
    seed, corpus = golden_corpus
    expected = _load_json(f"golden_profile_{uarch}.json")
    profile = profile_corpus_detailed(corpus, uarch, seed=seed)
    actual_tp = {str(k): v for k, v in profile.throughputs.items()}

    drifted = {
        bid: (actual_tp.get(bid), expected["throughputs"].get(bid))
        for bid in set(actual_tp) | set(expected["throughputs"])
        if actual_tp.get(bid) != expected["throughputs"].get(bid)
    }
    assert not drifted and profile.funnel == expected["funnel"], (
        f"SIMULATOR TIMING DRIFT on {uarch}: "
        f"{len(drifted)} block(s) changed "
        f"(e.g. {dict(list(drifted.items())[:3])}), "
        f"funnel {profile.funnel} vs {expected['funnel']}.\n"
        f"If this change is intentional, regenerate the golden files "
        f"({REGEN}) and commit them with an explanation; if not, you "
        f"just caught an accidental timing regression.")


def test_parallel_run_matches_golden(golden_corpus):
    """The golden files also pin the parallel engine end to end."""
    seed, corpus = golden_corpus
    expected = _load_json("golden_profile_haswell.json")
    profile = profile_corpus_sharded(corpus, "haswell", seed=seed,
                                     jobs=2, shard_size=8)
    assert {str(k): v for k, v in profile.throughputs.items()} \
        == expected["throughputs"]
    assert profile.funnel == expected["funnel"]
