"""Shard cache v3: layout, defensive loads, legacy migration."""

import json
import os

import pytest

from repro.corpus.dataset import BlockRecord, build_application
from repro.eval.validation import CorpusProfile
from repro.parallel import ShardCache, merge_profiles, shard_corpus


@pytest.fixture(scope="module")
def corpus():
    return build_application("llvm", count=20, seed=6)


@pytest.fixture()
def cache(tmp_path):
    return ShardCache(str(tmp_path))


def _profile_for(shard, value=2.0, drop_every=5):
    throughputs, dropped = {}, 0
    for i, record in enumerate(shard.records):
        if drop_every and i % drop_every == drop_every - 1:
            dropped += 1
        else:
            throughputs[record.block_id] = value + i
    return CorpusProfile(
        throughputs=throughputs,
        funnel={"total": len(shard), "accepted": len(throughputs),
                "dropped": {"sigfpe": dropped} if dropped else {}})


class TestRoundTrip:
    def test_store_load_identity(self, corpus, cache):
        for shard in shard_corpus(corpus, 6):
            profile = _profile_for(shard)
            cache.store(shard, profile)
            loaded = cache.load(shard)
            assert loaded.throughputs == profile.throughputs
            assert loaded.funnel == profile.funnel

    def test_offset_keying_survives_id_shifts(self, corpus, cache):
        """Same content, shifted block ids: the cached shard is still
        valid and remaps to the new ids — the property that makes a
        grown corpus incremental."""
        (shard,) = shard_corpus(corpus.records[:6], 6)
        cache.store(shard, _profile_for(shard, drop_every=0))

        shifted_records = [
            BlockRecord(block=r.block, application=r.application,
                        frequency=r.frequency, block_id=r.block_id + 100)
            for r in shard.records]
        (shifted,) = shard_corpus(shifted_records, 6)
        assert shifted.digest == shard.digest  # content-addressed
        loaded = cache.load(shifted)
        assert set(loaded.throughputs) == \
            {r.block_id for r in shifted_records}

    def test_no_temp_files_after_store(self, corpus, cache, tmp_path):
        for shard in shard_corpus(corpus, 8):
            cache.store(shard, _profile_for(shard))
        assert not any(name.endswith(".tmp")
                       for name in os.listdir(tmp_path))


class TestDefensiveLoads:
    def _stored(self, corpus, cache):
        (shard,) = shard_corpus(corpus.records[:4], 4)
        cache.store(shard, _profile_for(shard))
        return shard

    def test_missing_is_none(self, corpus, cache):
        (shard,) = shard_corpus(corpus.records[:4], 4)
        assert cache.load(shard) is None

    def test_truncated_json_is_a_miss(self, corpus, cache):
        shard = self._stored(corpus, cache)
        with open(cache.path_for(shard), "w") as fh:
            fh.write('{"version": 3, "throughputs": {')
        assert cache.load(shard) is None

    def test_wrong_version_is_a_miss(self, corpus, cache):
        shard = self._stored(corpus, cache)
        path = cache.path_for(shard)
        with open(path) as fh:
            doc = json.load(fh)
        doc["version"] = 2
        with open(path, "w") as fh:
            json.dump(doc, fh)
        assert cache.load(shard) is None

    def test_incoherent_funnel_is_a_miss(self, corpus, cache):
        shard = self._stored(corpus, cache)
        path = cache.path_for(shard)
        with open(path) as fh:
            doc = json.load(fh)
        doc["funnel"]["accepted"] += 1  # no longer covers the shard
        with open(path, "w") as fh:
            json.dump(doc, fh)
        assert cache.load(shard) is None


class TestLegacyImport:
    def test_v2_split_preserves_merged_funnel_exactly(self, corpus,
                                                      cache):
        shards = shard_corpus(corpus, 6)
        whole = merge_profiles(
            [(s, _profile_for(s, drop_every=3)) for s in shards])
        assert len(whole.funnel["dropped"]) >= 1

        imported = cache.import_v2(shards, whole)
        assert imported == len(shards)
        remerged = merge_profiles(
            [(s, cache.load(s)) for s in shards])
        assert remerged.throughputs == whole.throughputs
        assert remerged.funnel == whole.funnel

    def test_multi_reason_drops_survive_in_aggregate(self, corpus,
                                                     cache):
        shards = shard_corpus(corpus, 5)
        throughputs = {r.block_id: 1.5 for s in shards
                       for r in s.records[:-1]}
        dropped_total = sum(1 for s in shards) # one per shard
        whole = CorpusProfile(
            throughputs=throughputs,
            funnel={"total": len(corpus),
                    "accepted": len(throughputs),
                    "dropped": {"sigfpe": 1, "unstable_timing": 2,
                                "segfault": dropped_total - 3}})
        cache.import_v2(shards, whole)
        remerged = merge_profiles([(s, cache.load(s)) for s in shards])
        assert remerged.funnel == whole.funnel
        assert remerged.throughputs == whole.throughputs

    def test_import_skips_native_entries(self, corpus, cache):
        shards = shard_corpus(corpus, 6)
        native = _profile_for(shards[0], value=9.0, drop_every=0)
        cache.store(shards[0], native)
        whole = merge_profiles(
            [(s, _profile_for(s, drop_every=0)) for s in shards])
        imported = cache.import_v2(shards, whole)
        assert imported == len(shards) - 1
        kept = cache.load(shards[0])
        assert kept.throughputs == native.throughputs
