"""Property-based tests for shard split/merge.

Three algebraic properties the engine's safety proof leans on:

* sharding any corpus is a **partition** — no record lost, none
  duplicated, order preserved;
* **merge is order-independent** — any permutation of per-shard
  profiles merges to the same bytes;
* per-shard **digests are process-stable** — they survive
  ``PYTHONHASHSEED`` changes and fresh interpreters, so cache keys
  computed by different workers agree.

Uses hypothesis when available; otherwise a seeded random fallback
walks the same properties over a fixed sample of cases.
"""

import json
import random
import subprocess
import sys

import pytest

from repro.corpus.dataset import BlockRecord
from repro.eval.validation import CorpusProfile
from repro.isa.parser import parse_block
from repro.parallel import (merge_profiles, partition_check,
                            shard_corpus, shard_digest)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - environment-dependent
    HAVE_HYPOTHESIS = False

#: A small pool of distinct parsed blocks; records draw from it so
#: corpora are cheap to build but digests still vary with content.
BLOCK_POOL = [parse_block(text) for text in (
    "add %rax, %rbx",
    "xor %edx, %edx\ndiv %ecx",
    "mov 0x8(%rsp), %rcx\nadd %rcx, %rax",
    "mulps %xmm1, %xmm2\naddps %xmm2, %xmm3",
    "imul $3, %rdi, %rsi\nsub %rsi, %rdx",
    "lea 0x4(%rdi,%rsi,2), %rax",
)]


def make_records(choices):
    return [BlockRecord(block=BLOCK_POOL[c % len(BLOCK_POOL)],
                        application="test", frequency=1, block_id=i)
            for i, c in enumerate(choices)]


def fake_profile(shard) -> CorpusProfile:
    """A deterministic stand-in profile: content-derived, no simulator."""
    throughputs = {r.block_id: float(r.block_id % 7) + 0.5
                   for r in shard.records if r.block_id % 3}
    accepted = len(throughputs)
    dropped = {}
    missing = len(shard.records) - accepted
    if missing:
        dropped = {"sigfpe": (missing + 1) // 2,
                   "unstable_timing": missing // 2}
        dropped = {k: v for k, v in dropped.items() if v}
    return CorpusProfile(
        throughputs=throughputs,
        funnel={"total": len(shard.records), "accepted": accepted,
                "dropped": dropped})


# ---------------------------------------------------------------------------
# The properties (parameterised by (choices, shard_size, permutation seed))
# ---------------------------------------------------------------------------

def check_partition(choices, shard_size):
    records = make_records(choices)
    shards = shard_corpus(records, shard_size)
    flat_ids = [r.block_id for s in shards for r in s.records]
    assert flat_ids == [r.block_id for r in records]  # no loss, no dup
    assert len(set(flat_ids)) == len(flat_ids)
    assert all(len(s) <= shard_size for s in shards)
    if records:
        from repro.corpus.dataset import Corpus
        partition_check(Corpus(records), shards)


def check_merge_order_independent(choices, shard_size, perm_seed):
    records = make_records(choices)
    shards = shard_corpus(records, shard_size)
    pairs = [(s, fake_profile(s)) for s in shards]
    shuffled = list(pairs)
    random.Random(perm_seed).shuffle(shuffled)
    a = merge_profiles(pairs)
    b = merge_profiles(shuffled)
    assert json.dumps({"t": a.throughputs, "f": a.funnel}) \
        == json.dumps({"t": b.throughputs, "f": b.funnel})
    assert a.funnel["total"] == len(records)
    assert a.funnel["accepted"] + sum(a.funnel["dropped"].values()) \
        == len(records)


def check_digest_deterministic(choices, shard_size):
    records = make_records(choices)
    first = [s.digest for s in shard_corpus(records, shard_size)]
    second = [s.digest for s in shard_corpus(make_records(choices),
                                             shard_size)]
    assert first == second
    # Digests depend on content: different block choices differ
    # (unless the draw happens to repeat the same sequence).
    if records:
        bumped = make_records([c + 1 for c in choices])
        if [r.block.text() for r in bumped] \
                != [r.block.text() for r in records]:
            assert [s.digest for s in shard_corpus(bumped, shard_size)] \
                != first


if HAVE_HYPOTHESIS:
    corpora = st.lists(st.integers(min_value=0, max_value=5),
                       max_size=60)
    sizes = st.integers(min_value=1, max_value=12)

    @settings(max_examples=40, deadline=None)
    @given(choices=corpora, shard_size=sizes)
    def test_sharding_is_a_partition(choices, shard_size):
        check_partition(choices, shard_size)

    @settings(max_examples=40, deadline=None)
    @given(choices=corpora, shard_size=sizes,
           perm_seed=st.integers(min_value=0, max_value=2**16))
    def test_merge_is_order_independent(choices, shard_size, perm_seed):
        check_merge_order_independent(choices, shard_size, perm_seed)

    @settings(max_examples=25, deadline=None)
    @given(choices=corpora, shard_size=sizes)
    def test_digests_are_deterministic(choices, shard_size):
        check_digest_deterministic(choices, shard_size)
else:  # pragma: no cover - seeded fallback
    def _cases(n=40, seed=1234):
        rng = random.Random(seed)
        for _ in range(n):
            yield ([rng.randrange(6)
                    for _ in range(rng.randrange(61))],
                   rng.randint(1, 12), rng.randrange(2**16))

    def test_sharding_is_a_partition():
        for choices, size, _ in _cases():
            check_partition(choices, size)

    def test_merge_is_order_independent():
        for choices, size, perm in _cases():
            check_merge_order_independent(choices, size, perm)

    def test_digests_are_deterministic():
        for choices, size, _ in _cases(25):
            check_digest_deterministic(choices, size)


# ---------------------------------------------------------------------------
# Process stability: cache keys must not depend on PYTHONHASHSEED
# ---------------------------------------------------------------------------

_DIGEST_SCRIPT = """
import sys
from repro.corpus.dataset import build_application, Corpus
from repro.eval.pipeline import _corpus_digest
from repro.parallel import shard_corpus

corpus = build_application("llvm", count=24, seed=5)
digests = [s.digest for s in shard_corpus(corpus, 7)]
print(_corpus_digest(corpus), *digests)
"""


def _digests_under_hashseed(hashseed: str) -> str:
    import os
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) \
        + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run([sys.executable, "-c", _DIGEST_SCRIPT],
                         env=env, capture_output=True, text=True,
                         check=True)
    return out.stdout.strip()


def test_digests_stable_across_processes_and_hash_seeds():
    """Shard digests and the corpus digest are pure CRC-32 functions
    of content — a randomised ``hash()`` sneaking in would make cache
    keys disagree between parent and workers, which this catches."""
    a = _digests_under_hashseed("0")
    b = _digests_under_hashseed("4242")
    assert a == b
    assert a  # non-empty: the script really produced digests
