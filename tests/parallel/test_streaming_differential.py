"""Streamed profiling is byte-identical to batch, and never cheats.

``profile_corpus_streamed`` consumes a *generator* of records — it can
never look ahead, count, or re-read its input — yet its merged profile
must serialise to exactly the bytes the batch sharded engine produces.
This suite proves that differentially (serial and pooled, all three
microarchitectures), pins the ``REPRO_STREAM=1`` delegation path in
``profile_corpus_sharded``, and checks the streamed run's contracts:
index-ordered folding, honest stats, journal-identity discipline, and
cache interoperability with batch runs.
"""

import json
import os

import pytest

from repro.corpus.dataset import build_application
from repro.parallel import (ShardCache, profile_corpus_sharded,
                            profile_corpus_streamed, shard_corpus)
from repro.resilience import JOURNAL_NAME, RunJournal

UARCHES = ("ivybridge", "haswell", "skylake")


def _payload(profile) -> str:
    return json.dumps({"throughputs": profile.throughputs,
                       "funnel": profile.funnel})


def _records(app="openblas", count=26, seed=5):
    return build_application(app, count=count, seed=seed).records


@pytest.mark.parametrize("uarch", UARCHES)
@pytest.mark.parametrize("jobs", (1, 2))
def test_streamed_equals_batch(uarch, jobs):
    records = _records()
    batch = profile_corpus_sharded(records, uarch, seed=5, jobs=jobs,
                                   shard_size=4)
    streamed = profile_corpus_streamed(iter(records), uarch, seed=5,
                                       jobs=jobs, shard_size=4)
    assert _payload(streamed) == _payload(batch)


def test_env_delegation_equals_batch(monkeypatch):
    """``REPRO_STREAM=1`` reroutes the batch entry point through the
    streamed engine — same signature, same bytes."""
    records = _records(count=21)
    monkeypatch.delenv("REPRO_STREAM", raising=False)
    batch = profile_corpus_sharded(records, "haswell", seed=5,
                                   jobs=2, shard_size=8)
    monkeypatch.setenv("REPRO_STREAM", "1")
    streamed = profile_corpus_sharded(records, "haswell", seed=5,
                                      jobs=2, shard_size=8)
    assert _payload(streamed) == _payload(batch)


def test_stream_flag_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_STREAM", "1")
    records = _records(count=9)
    explicit_off = profile_corpus_sharded(records, "haswell", seed=5,
                                          shard_size=4, stream=False)
    explicit_on = profile_corpus_sharded(records, "haswell", seed=5,
                                         shard_size=4, stream=True)
    assert _payload(explicit_off) == _payload(explicit_on)


def test_accepts_shard_stream():
    """Pre-cut shards stream through unchanged (the delegation path
    hands over shards, not records)."""
    records = _records(count=18)
    shards = shard_corpus(records, 4)
    streamed = profile_corpus_streamed(iter(shards), "skylake", seed=5,
                                       shard_size=4)
    assert _payload(streamed) == _payload(
        profile_corpus_sharded(records, "skylake", seed=5,
                               shard_size=4))


@pytest.mark.parametrize("jobs", (1, 2))
def test_on_shard_fires_in_index_order(jobs):
    records = _records(count=22)
    seen = []
    profile_corpus_streamed(
        iter(records), "haswell", seed=5, jobs=jobs, shard_size=4,
        on_shard=lambda shard, profile:
            seen.append((shard.index, len(shard),
                         len(profile.throughputs))))
    assert [index for index, _, _ in seen] \
        == list(range(len(shard_corpus(records, 4))))
    assert sum(n for _, n, _ in seen) == len(records)


@pytest.mark.parametrize("jobs", (1, 2))
def test_stats_account_for_every_shard(jobs):
    records = _records(count=20)
    stats = {}
    profile_corpus_streamed(iter(records), "haswell", seed=5,
                            jobs=jobs, shard_size=4, stats=stats)
    assert stats["shards"] == 5
    assert stats["profiled"] == 5
    assert stats["cache_hits"] == 0
    assert stats["failed"] == 0
    assert stats["max_queue_depth"] >= 1


def test_empty_stream():
    profile = profile_corpus_streamed(iter(()), "haswell", seed=0)
    assert profile.throughputs == {}
    assert profile.funnel["total"] == 0


def test_journal_requires_identity(tmp_path):
    """A streamed run cannot digest a corpus it hasn't generated yet,
    so journalling demands an explicit identity."""
    cache = ShardCache(str(tmp_path))
    journal = RunJournal(os.path.join(str(tmp_path), JOURNAL_NAME))
    with pytest.raises(ValueError):
        profile_corpus_streamed(iter(_records(count=4)), "haswell",
                                seed=5, cache=cache, journal=journal)


@pytest.mark.parametrize("jobs", (1, 2))
def test_cache_interop_with_batch(tmp_path, jobs):
    """A batch run warms the cache; the streamed run over the same
    records resumes every shard from it — and vice versa."""
    records = _records(count=16)
    cache = ShardCache(str(tmp_path))
    batch_stats = {}
    batch = profile_corpus_sharded(records, "haswell", seed=5,
                                   jobs=jobs, shard_size=4,
                                   cache=cache, stats=batch_stats)
    assert batch_stats["cache_hits"] == 0
    stream_stats = {}
    streamed = profile_corpus_streamed(iter(records), "haswell",
                                       seed=5, jobs=jobs, shard_size=4,
                                       cache=cache, stats=stream_stats)
    assert stream_stats["cache_hits"] == 4
    assert stream_stats["profiled"] == 0
    assert _payload(streamed) == _payload(batch)


def test_streamed_run_is_rerunnable_from_journal(tmp_path):
    """Two streamed runs sharing a cache+journal: the second loads
    every shard back and reproduces the first's bytes."""
    records = _records(count=16)

    def run():
        cache = ShardCache(str(tmp_path))
        journal = RunJournal(os.path.join(cache.directory,
                                          JOURNAL_NAME))
        stats = {}
        profile = profile_corpus_streamed(
            iter(records), "haswell", seed=5, jobs=2, shard_size=4,
            cache=cache, journal=journal,
            journal_meta={"uarch": "haswell", "seed": 5,
                          "stream": "test-rerun"}, stats=stats)
        return _payload(profile), stats

    first, first_stats = run()
    second, second_stats = run()
    assert first == second
    assert first_stats["resumed"] == 0
    assert second_stats["resumed"] == 4
    assert second_stats["profiled"] == 0


def test_prefetch_depth_does_not_change_bytes(monkeypatch):
    records = _records(count=24)
    payloads = set()
    for prefetch in ("1", "2", "5"):
        monkeypatch.setenv("REPRO_STREAM_PREFETCH", prefetch)
        payloads.add(_payload(profile_corpus_streamed(
            iter(records), "haswell", seed=5, jobs=2, shard_size=3)))
    assert len(payloads) == 1
