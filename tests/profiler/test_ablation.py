"""Ablation configurations (Tables I and II)."""

import pytest

from repro.corpus import tensorflow_ablation_block
from repro.profiler import (BasicBlockProfiler, FailureReason)
from repro.profiler.ablation import (STAGE_LABELS, STAGES, TABLE1_LABELS,
                                     TABLE1_STAGES, AblationStage,
                                     config_for_stage, relaxed)
from repro.uarch import Machine


class TestConfigs:
    def test_all_stages_have_configs_and_labels(self):
        for stage in STAGES:
            config = config_for_stage(stage)
            assert config is not None
            assert stage in STAGE_LABELS

    def test_table1_subset(self):
        assert set(TABLE1_STAGES) <= set(STAGES)
        assert all(s in TABLE1_LABELS for s in TABLE1_STAGES)

    def test_stage_none_has_no_mapping(self):
        config = config_for_stage(AblationStage.NONE)
        assert not config.mapping_enabled
        assert not config.environment.ftz

    def test_page_mapping_stage_uses_many_frames(self):
        config = config_for_stage(AblationStage.PAGE_MAPPING)
        assert config.mapping_enabled
        assert not config.environment.single_physical_page

    def test_single_page_stage(self):
        config = config_for_stage(AblationStage.SINGLE_PHYS_PAGE)
        assert config.environment.single_physical_page
        assert not config.environment.ftz

    def test_ftz_stage(self):
        assert config_for_stage(AblationStage.FTZ).environment.ftz

    def test_final_stage_is_two_factor(self):
        config = config_for_stage(AblationStage.SMALL_UNROLL)
        assert config.unroll_strategy == "two_factor"

    def test_relaxed_drops_enforcement(self):
        config = relaxed(config_for_stage(AblationStage.FTZ))
        assert not config.acceptance.enforce_invariants
        assert not config.acceptance.reject_misaligned


class TestTable2Story:
    """The per-block ablation must be monotone with the right counters."""

    @pytest.fixture(scope="class")
    def rows(self):
        block = tensorflow_ablation_block()
        out = {}
        for stage in STAGES:
            profiler = BasicBlockProfiler(
                Machine("haswell"), relaxed(config_for_stage(stage)))
            out[stage] = profiler.profile(block)
        return out

    def test_stage_none_crashes(self, rows):
        assert rows[AblationStage.NONE].failure \
            is FailureReason.SEGFAULT

    def test_page_mapping_has_data_misses(self, rows):
        result = rows[AblationStage.PAGE_MAPPING]
        assert result.ok
        m = result.measurements[0]
        assert m.l1d_read_misses + m.l1d_write_misses > 0

    def test_single_page_removes_data_misses(self, rows):
        m = rows[AblationStage.SINGLE_PHYS_PAGE].measurements[0]
        assert m.l1d_read_misses + m.l1d_write_misses == 0

    def test_ftz_collapses_throughput(self, rows):
        before = rows[AblationStage.SINGLE_PHYS_PAGE].throughput
        after = rows[AblationStage.FTZ].throughput
        assert after < before / 5  # paper: 2273.7 -> 65.0 (35x)

    def test_naive_unroll_still_misses_icache(self, rows):
        assert rows[AblationStage.FTZ].measurements[0].l1i_misses > 0

    def test_small_unroll_is_clean_and_fastest(self, rows):
        final = rows[AblationStage.SMALL_UNROLL]
        assert final.measurements[0].l1i_misses == 0
        throughputs = [rows[s].throughput for s in STAGES
                       if rows[s].ok]
        assert final.throughput == min(throughputs)

    def test_rows_monotonically_improve(self, rows):
        ordered = [rows[s].throughput for s in STAGES if rows[s].ok]
        assert ordered == sorted(ordered, reverse=True)
