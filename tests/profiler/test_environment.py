"""Measurement-environment setup (§III-D initialisation)."""

from repro.profiler.environment import Environment, EnvironmentConfig
from repro.runtime.state import INIT_CONSTANT
from repro.isa.registers import lookup


class TestReset:
    def test_reset_unmaps_and_reinitialises(self):
        env = Environment()
        env.reset()
        env.map_faulting_address(0x5000)
        env.reset()
        assert env.pages_mapped == 0
        assert env.state.read(lookup("rdi")) == INIT_CONSTANT

    def test_reinitialize_preserves_mappings(self):
        env = Environment()
        env.reset()
        env.map_faulting_address(0x5000)
        env.reinitialize()
        assert env.pages_mapped == 1

    def test_reinitialize_refills_frames(self):
        env = Environment()
        env.reset()
        env.map_faulting_address(0x5000)
        env.memory.write_int(0x5000, 4, 0xDEAD)
        env.reinitialize()
        assert env.memory.read_int(0x5000, 4) == INIT_CONSTANT

    def test_ftz_configuration(self):
        env = Environment(EnvironmentConfig(ftz=True))
        env.reset()
        assert env.state.ftz
        env = Environment(EnvironmentConfig(ftz=False))
        env.reset()
        assert not env.state.ftz


class TestFrameAllocation:
    def test_single_physical_page_mode(self):
        env = Environment(EnvironmentConfig(single_physical_page=True))
        env.reset()
        for address in (0x5000, 0xA000, 0x3F000):
            env.map_faulting_address(address)
        assert env.pages_mapped == 3
        assert len(env.memory.physical_pages) == 1

    def test_per_page_mode(self):
        env = Environment(EnvironmentConfig(single_physical_page=False))
        env.reset()
        for address in (0x5000, 0xA000, 0x3F000):
            env.map_faulting_address(address)
        assert len(env.memory.physical_pages) == 3

    def test_remapping_same_page_reuses_frame(self):
        env = Environment(EnvironmentConfig(single_physical_page=False))
        env.reset()
        env.map_faulting_address(0x5000)
        env.map_faulting_address(0x5800)  # same page
        assert env.pages_mapped == 1
        assert len(env.memory.physical_pages) == 1

    def test_custom_init_constant(self):
        env = Environment(EnvironmentConfig(init_constant=0x2000_0000))
        env.reset()
        assert env.state.read(lookup("rax")) == 0x2000_0000
        env.map_faulting_address(0x5000)
        env.reinitialize()
        assert env.memory.read_int(0x5000, 4) == 0x2000_0000
