"""Invariant enforcement: the 8-of-16 identical clean rule."""

from repro.profiler.filters import AcceptancePolicy
from repro.profiler.result import FailureReason
from repro.uarch.counters import CounterSample


def clean(cycles):
    return CounterSample(cycles=cycles)


class TestAcceptance:
    def test_sixteen_identical_accepted(self):
        policy = AcceptancePolicy()
        cycles, failure, n = policy.accept([clean(100)] * 16)
        assert (cycles, failure, n) == (100, None, 16)

    def test_exactly_eight_identical_accepted(self):
        policy = AcceptancePolicy()
        samples = [clean(100)] * 8 + [clean(100 + i) for i in range(8)]
        cycles, failure, _ = policy.accept(samples)
        assert cycles == 100 and failure is None

    def test_seven_identical_rejected_unstable(self):
        policy = AcceptancePolicy()
        samples = [clean(100)] * 7 + [clean(101 + i) for i in range(9)]
        cycles, failure, _ = policy.accept(samples)
        assert cycles is None
        assert failure is FailureReason.UNSTABLE

    def test_context_switch_runs_do_not_count(self):
        policy = AcceptancePolicy()
        dirty = CounterSample(cycles=100, context_switches=1)
        samples = [clean(100)] * 7 + [dirty] * 9
        cycles, failure, n = policy.accept(samples)
        assert cycles is None and n == 7

    def test_cache_miss_reason_reported(self):
        policy = AcceptancePolicy()
        miss = CounterSample(cycles=100, l1d_read_misses=5)
        cycles, failure, _ = policy.accept([miss] * 16)
        assert failure is FailureReason.L1D_MISS
        imiss = CounterSample(cycles=100, l1i_misses=2)
        _, failure, _ = policy.accept([imiss] * 16)
        assert failure is FailureReason.L1I_MISS

    def test_misaligned_filter(self):
        policy = AcceptancePolicy()
        bad = CounterSample(cycles=100, misaligned_mem_refs=1)
        cycles, failure, _ = policy.accept([bad] * 16)
        assert failure is FailureReason.MISALIGNED

    def test_misaligned_filter_can_be_disabled(self):
        policy = AcceptancePolicy(reject_misaligned=False)
        bad = CounterSample(cycles=100, misaligned_mem_refs=1)
        cycles, failure, _ = policy.accept([bad] * 16)
        assert cycles == 100 and failure is None

    def test_relaxed_mode_reports_mode_of_all_runs(self):
        policy = AcceptancePolicy(enforce_invariants=False,
                                  reject_misaligned=False)
        dirty = CounterSample(cycles=500, l1d_read_misses=9)
        samples = [dirty] * 10 + [clean(100)] * 6
        cycles, failure, _ = policy.accept(samples)
        assert cycles == 500 and failure is None

    def test_mode_of_clean_values_wins(self):
        policy = AcceptancePolicy()
        samples = [clean(100)] * 9 + [clean(104)] * 7
        cycles, _, _ = policy.accept(samples)
        assert cycles == 100
