"""End-to-end profiling through the public harness."""

import pytest

from repro.profiler import (BasicBlockProfiler, FailureReason,
                            ProfilerConfig, profile_block)
from repro.profiler.ablation import AblationStage, config_for_stage
from repro.uarch import Machine


class TestBasicProfiles:
    def test_simple_chain(self, profiler):
        result = profiler.profile("add %rbx, %rax")
        assert result.ok
        assert result.throughput == 1.0

    def test_accepts_text_or_block(self, profiler):
        from repro.isa import parse_block
        a = profiler.profile("add %rbx, %rax")
        b = profiler.profile(parse_block("add %rbx, %rax"))
        assert a.throughput == b.throughput

    def test_div_block_matches_paper_scale(self, profiler):
        result = profiler.profile(
            "xor %edx, %edx\ndiv %ecx\ntest %edx, %edx")
        assert result.ok
        assert 20 <= result.throughput <= 27  # paper: 21.62

    def test_zero_idiom(self, profiler):
        result = profiler.profile("vxorps %xmm2, %xmm2, %xmm2")
        assert result.throughput == pytest.approx(0.25, abs=0.01)

    def test_memory_block_profiles_cleanly(self, profiler):
        result = profiler.profile("mov (%rdi), %rax\nadd $64, %rdi")
        assert result.ok
        assert result.pages_mapped >= 1
        for m in result.measurements:
            assert m.l1d_read_misses == 0
            assert m.l1i_misses == 0

    def test_measurements_recorded_per_factor(self, profiler):
        result = profiler.profile("add %rbx, %rax")
        assert len(result.measurements) == 2
        assert result.measurements[0].unroll < \
            result.measurements[1].unroll
        assert all(m.clean_runs >= 8 for m in result.measurements)

    def test_throughput_is_deterministic(self, profiler):
        a = profiler.profile("imul %rbx, %rax")
        b = profiler.profile("imul %rbx, %rax")
        assert a.throughput == b.throughput


class TestFailures:
    def test_unsupported_isa_on_ivybridge(self):
        profiler = BasicBlockProfiler(Machine("ivybridge"))
        result = profiler.profile("vpaddd %ymm0, %ymm1, %ymm2")
        assert result.failure is FailureReason.UNSUPPORTED_ISA

    def test_unsupported_instruction(self, profiler):
        result = profiler.profile("cpuid")
        assert result.failure is FailureReason.UNSUPPORTED

    def test_sigfpe(self, profiler):
        result = profiler.profile(
            "xor %ecx, %ecx\nxor %edx, %edx\ndiv %ecx")
        assert result.failure is FailureReason.SIGFPE

    def test_invalid_address(self, profiler):
        result = profiler.profile("mov 0x40, %rax")
        assert result.failure is FailureReason.INVALID_ADDRESS

    def test_misaligned_dropped(self, profiler):
        result = profiler.profile("movups 60(%rdi), %xmm0")
        assert result.failure is FailureReason.MISALIGNED

    def test_never_raises_on_junk_blocks(self, profiler):
        for text in ("cpuid", "mov 0x40, %rax",
                     "xor %ecx, %ecx\nxor %edx, %edx\ndiv %ecx"):
            result = profiler.profile(text)
            assert not result.ok and result.failure is not None


class TestConfigModes:
    def test_naive_strategy_single_measurement(self):
        config = ProfilerConfig(unroll_strategy="naive", naive_unroll=50)
        result = BasicBlockProfiler(Machine("haswell"), config) \
            .profile("add %rbx, %rax")
        assert len(result.measurements) == 1
        assert result.measurements[0].unroll == 50

    def test_unknown_strategy_rejected(self):
        config = ProfilerConfig(unroll_strategy="magic")
        profiler = BasicBlockProfiler(Machine("haswell"), config)
        with pytest.raises(ValueError):
            profiler.profile("add %rbx, %rax")

    def test_stage_none_is_agner_style(self):
        config = config_for_stage(AblationStage.NONE)
        profiler = BasicBlockProfiler(Machine("haswell"), config)
        assert profiler.profile("mov (%rdi), %rax").failure \
            is FailureReason.SEGFAULT
        assert profiler.profile("add %rbx, %rax").ok

    def test_profile_block_convenience(self):
        result = profile_block("add %rbx, %rax", uarch="skylake")
        assert result.ok and result.uarch == "skylake"

    def test_naive_vs_two_factor_on_large_block(self):
        """Table I row 2 vs row 3: intelligent unrolling recovers the
        large blocks naive 100x unrolling loses to the I-cache."""
        big = "\n".join(f"add $1, %r{8 + k % 8}" for k in range(90))
        naive = BasicBlockProfiler(
            Machine("haswell"),
            ProfilerConfig(unroll_strategy="naive")).profile(big)
        smart = BasicBlockProfiler(Machine("haswell")).profile(big)
        assert naive.failure is FailureReason.L1I_MISS
        assert smart.ok

    def test_profile_many_preserves_order(self, profiler):
        results = profiler.profile_many(
            ["add %rbx, %rax", "cpuid", "imul %rbx, %rax"])
        assert results[0].ok
        assert not results[1].ok
        assert results[2].ok
