"""Per-instruction latency/throughput measurement (llvm-exegesis
analogue) — verified against the ground-truth tables."""

import pytest

from repro.profiler.latency import InstructionBenchmark


@pytest.fixture(scope="module")
def bench():
    return InstructionBenchmark("haswell")


class TestLatency:
    @pytest.mark.parametrize("mnemonic,expected", [
        ("add", 1.0), ("imul", 3.0), ("addps", 3.0),
        ("mulps", 5.0), ("vfmadd231ps", 5.0), ("shl", 1.0),
        ("popcnt", 3.0),
    ])
    def test_matches_ground_truth_tables(self, bench, mnemonic,
                                         expected):
        assert bench.latency(mnemonic) == pytest.approx(expected,
                                                        abs=0.15)

    def test_unsupported_returns_none(self, bench):
        assert bench.latency("cpuid") is None

    def test_unknown_mnemonic_raises(self, bench):
        from repro.errors import UnknownOpcodeError
        with pytest.raises(UnknownOpcodeError):
            bench.latency("frobnicate")


class TestThroughput:
    @pytest.mark.parametrize("mnemonic,expected", [
        ("add", 0.25),      # 4 ALU ports
        ("imul", 1.0),      # port 1 only
        ("addps", 1.0),     # port 1 only on Haswell
        ("mulps", 0.5),     # ports 0 and 1
        ("pshufd", 1.0),    # port 5 only
    ])
    def test_matches_port_widths(self, bench, mnemonic, expected):
        measured = bench.reciprocal_throughput(mnemonic)
        assert measured == pytest.approx(expected, abs=0.15)

    def test_latency_at_least_throughput(self, bench):
        for mnemonic in ("add", "imul", "mulps", "addps"):
            t = bench.measure(mnemonic)
            assert t.latency >= t.reciprocal_throughput


class TestAcrossUarches:
    def test_skylake_fp_latencies_unified(self):
        skl = InstructionBenchmark("skylake")
        assert skl.latency("addps") == pytest.approx(4.0, abs=0.15)
        assert skl.latency("mulps") == pytest.approx(4.0, abs=0.15)

    def test_haswell_fp_split(self, bench):
        assert bench.latency("addps") < bench.latency("mulps")

    def test_string_rendering(self, bench):
        text = str(bench.measure("add"))
        assert "add" in text and "lat=" in text
