"""The Fig. 2 monitor/measure protocol."""

from repro.isa.parser import parse_block
from repro.profiler.environment import Environment, EnvironmentConfig
from repro.profiler.mapping import map_pages
from repro.profiler.result import FailureReason


def env(**kw):
    e = Environment(EnvironmentConfig(**kw))
    e.reset()
    return e


class TestHappyPath:
    def test_register_only_block_needs_no_mapping(self):
        e = env()
        out = map_pages(e, parse_block("add %rbx, %rax"), unroll=4)
        assert out.success
        assert out.num_faults == 0
        assert e.pages_mapped == 0

    def test_each_fault_maps_one_page(self):
        e = env()
        out = map_pages(e, parse_block("mov (%rdi), %rax"), unroll=4)
        assert out.success
        assert out.num_faults == 1
        assert e.pages_mapped == 1

    def test_dword_pointer_chase_maps_chain(self):
        # The loaded dword is the init constant, i.e. it points into
        # the already-mapped page: the chase succeeds with one fault.
        e = env()
        out = map_pages(
            e, parse_block("mov (%rdi), %ebx\nmov (%rbx), %rcx"),
            unroll=2)
        assert out.success
        assert out.num_faults >= 1

    def test_qword_pointer_chase_fails_validity(self):
        # The fill pattern's qwords exceed user space (the real
        # suite's behaviour too): isValidAddr fails, block dropped.
        e = env()
        out = map_pages(
            e, parse_block("mov (%rdi), %rbx\nmov (%rbx), %rcx"),
            unroll=2)
        assert not out.success
        assert out.failure is FailureReason.INVALID_ADDRESS

    def test_trace_returned_on_success(self):
        e = env()
        out = map_pages(e, parse_block("mov (%rdi), %rax"), unroll=3)
        assert out.trace is not None
        assert len(out.trace) == 3

    def test_single_physical_page_backs_everything(self):
        e = env(single_physical_page=True)
        block = parse_block("mov (%rdi), %rax\nadd $8192, %rdi")
        out = map_pages(e, block, unroll=8)
        assert out.success
        assert e.pages_mapped >= 8
        assert len(e.memory.physical_pages) == 1

    def test_per_page_frames_mode(self):
        e = env(single_physical_page=False)
        block = parse_block("mov (%rdi), %rax\nadd $8192, %rdi")
        out = map_pages(e, block, unroll=8)
        assert out.success
        assert len(e.memory.physical_pages) == e.pages_mapped


class TestFailureModes:
    def test_mapping_disabled_faults_are_fatal(self):
        e = env()
        out = map_pages(e, parse_block("mov (%rdi), %rax"), unroll=4,
                        enable_mapping=False)
        assert not out.success
        assert out.failure is FailureReason.SEGFAULT

    def test_invalid_address_gives_up(self):
        e = env()
        out = map_pages(e, parse_block("mov 0x40, %rax"), unroll=2)
        assert not out.success
        assert out.failure is FailureReason.INVALID_ADDRESS

    def test_max_faults_exceeded(self):
        e = env()
        block = parse_block(
            "mov (%rbx), %rax\nadd $4096, %rbx\n"
            "mov (%rsi), %rcx\nadd $4096, %rsi\n"
            "mov (%rdi), %rdx\nadd $4096, %rdi")
        out = map_pages(e, block, unroll=32, max_faults=16)
        assert not out.success
        assert out.failure is FailureReason.TOO_MANY_FAULTS
        assert out.num_faults == 17

    def test_divide_error(self):
        e = env()
        block = parse_block("xor %ecx, %ecx\nxor %edx, %edx\ndiv %ecx")
        out = map_pages(e, block, unroll=2)
        assert not out.success
        assert out.failure is FailureReason.SIGFPE

    def test_unsupported_instruction(self):
        e = env()
        out = map_pages(e, parse_block("add %rbx, %rax\ncpuid"),
                        unroll=2)
        assert not out.success
        assert out.failure is FailureReason.UNSUPPORTED


class TestReinitialization:
    def test_mapping_then_measurement_trace_identical(self):
        """The re-init argument: the measurement run reproduces the
        mapping run's addresses exactly."""
        from repro.runtime.executor import Executor
        e = env()
        block = parse_block("""
            add $1, %rdi
            mov %edx, %eax
            shr $8, %rdx
            xor -1(%rdi), %al
            movzx %al, %eax
            xor 0x41108(, %rax, 8), %rdx
            cmp %rcx, %rdi
        """)
        out = map_pages(e, block, unroll=8)
        assert out.success
        e.reinitialize()
        trace = Executor(e.state, e.memory).execute_block(block, 8)
        assert trace.address_signature() == \
            out.trace.address_signature()

    def test_memory_refilled_between_runs(self):
        e = env()
        block = parse_block("mov $7, %rax\nmov %rax, (%rdi)\n"
                            "mov (%rdi), %rbx")
        out = map_pages(e, block, unroll=2)
        assert out.success
        e.reinitialize()
        # After re-init the frame holds the fill pattern again.
        value = e.memory.read_int(0x12345600, 4)
        assert value == 0x12345600
