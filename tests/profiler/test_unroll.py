"""Unroll planning and the Eq. 1 / Eq. 2 throughput derivations."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.instruction import BasicBlock
from repro.isa.parser import parse_block
from repro.profiler.unroll import (NAIVE_UNROLL, UnrollPlan, naive_plan,
                                   two_factor_plan)


class TestNaive:
    def test_eq1(self):
        plan = naive_plan(100)
        assert plan.factors == (100,)
        assert plan.derive_throughput((850,)) == 8.5

    def test_default_is_100(self):
        assert naive_plan().factors == (NAIVE_UNROLL,)


class TestTwoFactor:
    def test_eq2(self):
        plan = UnrollPlan(factors=(16, 32))
        # warm-up of 20 cycles cancels: (20+32*8) - (20+16*8) = 128.
        assert plan.derive_throughput((148, 276)) == 8.0

    def test_small_block_gets_default_factors(self):
        plan = two_factor_plan(parse_block("add %rbx, %rax"))
        assert plan.factors == (16, 32)

    def test_large_block_gets_smaller_factors(self):
        big = parse_block("\n".join(
            "vfmadd231ps 0x40(%rax), %ymm2, %ymm3" for _ in range(200)))
        plan = two_factor_plan(big)
        u1, u2 = plan.factors
        assert u2 < 32
        assert u2 * big.byte_length <= 32 * 1024

    def test_factors_always_distinct(self):
        huge = parse_block("\n".join(
            "vfmadd231ps %ymm1, %ymm2, %ymm3" for _ in range(200)))
        u1, u2 = two_factor_plan(huge).factors
        assert u1 < u2

    def test_max_factor(self):
        assert UnrollPlan(factors=(4, 12)).max_factor == 12


@given(st.integers(min_value=1, max_value=60),
       st.integers(min_value=2, max_value=500),
       st.integers(min_value=0, max_value=400))
def test_eq2_recovers_exact_linear_cost(throughput, u1, warmup):
    """If cycles(u) = warmup + T*u, Eq. 2 returns exactly T."""
    u2 = u1 * 2
    plan = UnrollPlan(factors=(u1, u2))
    cycles = (warmup + throughput * u1, warmup + throughput * u2)
    assert plan.derive_throughput(cycles) == pytest.approx(throughput)


@given(st.integers(min_value=1, max_value=60),
       st.integers(min_value=1, max_value=400))
def test_eq1_overestimates_by_amortized_warmup(throughput, warmup):
    """Eq. 1 carries warm-up bias of warmup/u — the reason the paper
    needs large unroll factors for the naive strategy."""
    plan = naive_plan(100)
    measured = plan.derive_throughput((warmup + throughput * 100,))
    assert measured == pytest.approx(throughput + warmup / 100)
    assert measured >= throughput
