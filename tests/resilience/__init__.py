"""Tests for repro.resilience: chaos, journal/resume, policy."""
