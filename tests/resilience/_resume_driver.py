"""Subprocess driver for the SIGKILL -> resume determinism tests.

Run as a script (``python tests/resilience/_resume_driver.py
<cache_dir> <out_json> <uarch> <jobs>``): profiles a fixed small
corpus through the sharded engine with the always-on run journal,
then writes the merged profile as JSON.

The parent test launches this twice against the same cache directory:
once to be SIGKILLed mid-run (``RESUME_DRIVER_SLEEP`` stretches each
shard store so the kill reliably lands mid-flight), once to resume.
The resumed run's output must be byte-identical to an uninterrupted
run — that comparison happens in the test, on the files this writes.
"""

import json
import os
import sys
import time


#: ``RESUME_DRIVER_CORPUS=lanes`` swaps the llvm sample for two
#: lane-shaped families (8 members each, family-major order) so every
#: 2-block shard forms a vectorized lane — the batch-lane leg of the
#: SIGKILL -> resume matrix.
_LANE_SHAPES = (
    "movq (%%rax), %%rbx\naddq $0x%x, %%rbx\nmovq %%rbx, 8(%%rax)",
    "cmpq $0x%x, %%rsi\ncmovne %%rdi, %%r8\nsete %%al",
)


def _lane_corpus():
    from repro.corpus.dataset import BlockRecord, Corpus
    from repro.isa.parser import parse_block
    records = []
    for shape in _LANE_SHAPES:
        for k in range(8):
            records.append(BlockRecord(
                block=parse_block(shape % (0x100 + 16 * k)),
                application="lanes", frequency=1,
                block_id=len(records)))
    return Corpus(records)


def main(argv):
    cache_dir, out_path, uarch, jobs = \
        argv[0], argv[1], argv[2], int(argv[3])
    store_sleep = float(os.environ.get("RESUME_DRIVER_SLEEP", "0"))

    from repro.corpus.dataset import build_application
    from repro.parallel import (ShardCache, profile_corpus_sharded,
                                shard_corpus)
    from repro.resilience import JOURNAL_NAME, RunJournal

    if os.environ.get("RESUME_DRIVER_CORPUS") == "lanes":
        corpus = _lane_corpus()
    else:
        corpus = build_application("llvm", count=16, seed=3)
    shards = shard_corpus(corpus, 2)

    class SlowStoreCache(ShardCache):
        """Stretch the completion timeline so a kill lands mid-run."""

        def store(self, shard, profile):
            if store_sleep:
                time.sleep(store_sleep)
            return super().store(shard, profile)

    cache = SlowStoreCache(cache_dir)
    journal = RunJournal(os.path.join(cache_dir, JOURNAL_NAME))
    stats = {}
    if os.environ.get("RESUME_DRIVER_STREAM") == "1":
        # The streamed leg: same records, but fed as a generator the
        # engine has never seen in full — journal identity is pinned
        # to a fixed spec tag instead of a corpus digest.
        from repro.parallel import profile_corpus_streamed
        profile = profile_corpus_streamed(
            iter(corpus.records), uarch, seed=0, jobs=jobs,
            shard_size=2, cache=cache, journal=journal,
            journal_meta={"uarch": uarch, "seed": 0,
                          "stream": "kill-resume-driver"},
            stats=stats)
    else:
        profile = profile_corpus_sharded(corpus, uarch, seed=0,
                                         jobs=jobs, shards=shards,
                                         cache=cache, journal=journal,
                                         stats=stats)
    payload = {"throughputs": profile.throughputs,
               "funnel": profile.funnel,
               "info": profile.info}
    with open(out_path, "w") as fh:
        json.dump({"profile": payload, "stats": stats}, fh)


if __name__ == "__main__":
    main(sys.argv[1:])
