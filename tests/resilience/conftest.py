"""Isolation for the process-wide resilience switchboards."""

import pytest

from repro import telemetry
from repro.resilience import chaos
from repro.resilience import policy


@pytest.fixture(autouse=True)
def _isolate_resilience(monkeypatch):
    """Fresh telemetry + no inherited chaos/strict/budget state."""
    monkeypatch.delenv(chaos.ENV_VAR, raising=False)
    monkeypatch.delenv(policy.ENV_STRICT, raising=False)
    monkeypatch.delenv(policy.ENV_STEP_BUDGET, raising=False)
    chaos.set_policy(None)
    policy.set_strict(None)
    policy.set_step_budget(None)
    telemetry.reset()
    yield
    chaos.set_policy(None)
    policy.set_strict(None)
    policy.set_step_budget(None)
    telemetry.reset()
