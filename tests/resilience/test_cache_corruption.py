"""Corrupt cache files must quarantine, never crash.

Property tests feed truncated, garbage, and wrong-schema payloads to
every cache-loader generation — the v3 shard loader
(``ShardCache.load``), the journal-verified load path, and the legacy
v1/v2 monolithic loader — and assert the same contract everywhere: the
load reads as a miss, the offending file lands in ``quarantine/``
(or raises under ``--strict``), and a subsequent run re-profiles to a
funnel that reconciles exactly.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile

import pytest

from repro import telemetry
from repro.corpus.dataset import build_application
from repro.errors import StrictModeViolation
from repro.eval.pipeline import _load_cache, _store_cache
from repro.parallel import (ShardCache, profile_corpus_sharded,
                            shard_corpus)
from repro.parallel.engine import _load_verified
from repro.resilience import policy

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - environment-dependent
    HAVE_HYPOTHESIS = False

needs_hypothesis = pytest.mark.skipif(not HAVE_HYPOTHESIS,
                                      reason="hypothesis not installed")

#: Hypothesis profile shared by the corruption properties: corruption
#: bytes are cheap to generate, but the cache fixture is module-scoped
#: (profiling once is the expensive part), so the function-scoped
#: autouse isolation fixture triggers a health check we silence.
CORRUPTION_SETTINGS = dict(max_examples=25, deadline=None)
if HAVE_HYPOTHESIS:
    CORRUPTION_SETTINGS["suppress_health_check"] = \
        [HealthCheck.function_scoped_fixture]


@pytest.fixture(scope="module")
def corpus():
    return build_application("llvm", count=8, seed=3)


@pytest.fixture(scope="module")
def shards(corpus):
    return shard_corpus(corpus, 4)


@pytest.fixture(scope="module")
def seeded(corpus, shards, tmp_path_factory):
    """A fully populated v3 cache directory plus its clean profile."""
    directory = str(tmp_path_factory.mktemp("seed-cache"))
    cache = ShardCache(directory)
    profile = profile_corpus_sharded(corpus, "haswell", seed=0, jobs=1,
                                     shards=shards, cache=cache)
    return directory, profile


def _fresh_cache(template: str) -> ShardCache:
    """Copy the seeded cache so each (hypothesis) example corrupts
    its own private directory."""
    directory = tempfile.mkdtemp(prefix="repro-corrupt-")
    for name in os.listdir(template):
        if name.endswith(".json"):
            shutil.copy(os.path.join(template, name),
                        os.path.join(directory, name))
    return ShardCache(directory)


def _assert_quarantined(cache: ShardCache, path: str) -> None:
    assert not os.path.exists(path)
    assert os.path.basename(path) in cache.quarantined_files()


# ---------------------------------------------------------------------------
# v3 shard loader
# ---------------------------------------------------------------------------

@needs_hypothesis
class TestV3Corruption:
    @given(cut=st.floats(min_value=0.0, max_value=0.98))
    @settings(**CORRUPTION_SETTINGS)
    def test_truncation_reads_as_quarantined_miss(self, seeded, shards,
                                                  cut):
        cache = _fresh_cache(seeded[0])
        shard = shards[0]
        path = cache.path_for(shard)
        with open(path, "rb") as fh:
            data = fh.read()
        with open(path, "wb") as fh:
            fh.write(data[:int(len(data) * cut)])
        assert cache.load(shard) is None
        _assert_quarantined(cache, path)

    @given(noise=st.binary(max_size=80))
    @settings(**CORRUPTION_SETTINGS)
    def test_garbage_reads_as_quarantined_miss(self, seeded, shards,
                                               noise):
        cache = _fresh_cache(seeded[0])
        shard = shards[1]
        path = cache.path_for(shard)
        with open(path, "wb") as fh:
            fh.write(noise)
        assert cache.load(shard) is None
        _assert_quarantined(cache, path)

    @given(mutation=st.sampled_from([
        "wrong_version", "wrong_digest", "wrong_count", "not_a_dict",
        "funnel_missing", "funnel_unbalanced", "offsets_out_of_range",
    ]))
    @settings(**CORRUPTION_SETTINGS)
    def test_wrong_schema_reads_as_quarantined_miss(self, seeded,
                                                    shards, mutation):
        cache = _fresh_cache(seeded[0])
        shard = shards[0]
        path = cache.path_for(shard)
        with open(path) as fh:
            doc = json.load(fh)
        if mutation == "wrong_version":
            doc["version"] = 2
        elif mutation == "wrong_digest":
            doc["digest"] = "00000000-0"
        elif mutation == "wrong_count":
            doc["count"] += 1
        elif mutation == "not_a_dict":
            doc = [doc]
        elif mutation == "funnel_missing":
            del doc["funnel"]
        elif mutation == "funnel_unbalanced":
            doc["funnel"]["accepted"] += 1
        elif mutation == "offsets_out_of_range":
            doc["throughputs"] = {"999": 1.0}
        with open(path, "w") as fh:
            json.dump(doc, fh)
        assert cache.load(shard) is None
        _assert_quarantined(cache, path)


class TestV3Recovery:
    def test_corruption_reprofiles_to_identical_bytes(self, seeded,
                                                      corpus, shards):
        directory, clean = seeded
        cache = _fresh_cache(directory)
        first = cache.path_for(shards[0])
        with open(first, "r+") as fh:
            fh.truncate(10)
        with open(cache.path_for(shards[1]), "w") as fh:
            fh.write("\x00 garbage {{{")
        profile = profile_corpus_sharded(corpus, "haswell", seed=0,
                                         jobs=1, shards=shards,
                                         cache=cache)
        assert json.dumps(profile.throughputs) == \
            json.dumps(clean.throughputs)
        assert profile.funnel == clean.funnel
        funnel = profile.funnel
        assert funnel["total"] == len(corpus)
        assert funnel["accepted"] + sum(funnel["dropped"].values()) \
            == funnel["total"]
        assert len(cache.quarantined_files()) == 2
        # The cache healed: both shards were re-written.
        assert all(shard in cache for shard in shards)

    def test_strict_mode_raises_instead(self, seeded, shards):
        cache = _fresh_cache(seeded[0])
        path = cache.path_for(shards[0])
        with open(path, "w") as fh:
            fh.write("not json")
        with policy.forced_strict(True):
            with pytest.raises(StrictModeViolation):
                cache.load(shards[0])
        assert os.path.exists(path)  # strict mode does not move it

    def test_journal_checksum_mismatch_quarantines(self, seeded,
                                                   shards):
        cache = _fresh_cache(seeded[0])
        shard = shards[0]
        recorded = cache.checksum(shard)
        assert _load_verified(cache, shard,
                              {shard.digest: recorded}) is not None
        # Corrupt *after* journaling in a way that keeps the JSON
        # structurally valid — only the checksum can catch this.
        with open(cache.path_for(shard), "a") as fh:
            fh.write(" ")
        assert _load_verified(cache, shard,
                              {shard.digest: recorded}) is None
        _assert_quarantined(cache, cache.path_for(shard))


# ---------------------------------------------------------------------------
# Legacy v1/v2 monolithic loader
# ---------------------------------------------------------------------------

def _legacy_path() -> str:
    return os.path.join(tempfile.mkdtemp(prefix="repro-legacy-"),
                        "measured_main_haswell_0_deadbeef.json")


@needs_hypothesis
class TestLegacyCorruption:
    @given(noise=st.binary(max_size=80))
    @settings(**CORRUPTION_SETTINGS)
    def test_garbage_quarantines(self, noise):
        path = _legacy_path()
        with open(path, "wb") as fh:
            fh.write(noise)
        assert _load_cache(path) is None
        assert not os.path.exists(path)
        quarantine = os.path.join(os.path.dirname(path), "quarantine")
        assert os.path.basename(path) in os.listdir(quarantine)

    @given(payload=st.sampled_from([
        [1, 2, 3],                                  # not a mapping
        {"version": 2},                             # throughputs gone
        {"version": 2, "throughputs": {"x": 1.0}},  # non-int key
        {"version": 2, "throughputs": {"1": "a"}},  # non-float value
        {"version": 2, "throughputs": {}, "funnel": "zap"},
        {"7": "fast"},                              # v1, bad value
    ]))
    @settings(**CORRUPTION_SETTINGS)
    def test_wrong_schema_quarantines(self, payload):
        path = _legacy_path()
        with open(path, "w") as fh:
            json.dump(payload, fh)
        assert _load_cache(path) is None
        assert not os.path.exists(path)

    @given(cut=st.floats(min_value=0.0, max_value=0.95))
    @settings(**CORRUPTION_SETTINGS)
    def test_truncation_quarantines(self, cut):
        from repro.eval.validation import CorpusProfile
        path = _legacy_path()
        _store_cache(path, CorpusProfile(
            throughputs={1: 2.0, 2: 3.5},
            funnel={"total": 2, "accepted": 2, "dropped": {}}))
        with open(path, "rb") as fh:
            data = fh.read()
        with open(path, "wb") as fh:
            fh.write(data[:int(len(data) * cut)])
        assert _load_cache(path) is None
        assert not os.path.exists(path)


class TestLegacyStrict:
    def test_strict_mode_raises(self):
        path = _legacy_path()
        with open(path, "w") as fh:
            fh.write("not json")
        with policy.forced_strict(True):
            with pytest.raises(StrictModeViolation):
                _load_cache(path)
        assert os.path.exists(path)

    def test_quarantine_is_counted(self):
        telemetry.enable()
        path = _legacy_path()
        with open(path, "w") as fh:
            fh.write("not json")
        assert _load_cache(path) is None
        counters = telemetry.registry().snapshot()["counters"]
        assert counters["resilience.quarantined.cache_files"] == 1


# ---------------------------------------------------------------------------
# Stale temp sweep (crash debris)
# ---------------------------------------------------------------------------

class TestStaleTempSweep:
    def test_dead_writers_are_swept_live_ones_kept(self, tmp_path):
        telemetry.enable()
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        dead_pid = proc.pid  # reaped: guaranteed-dead pid
        directory = tmp_path / "cache"
        directory.mkdir()
        (directory / f"shard_abc.json.{dead_pid}.tmp").write_text("x")
        (directory / "noise.tmp").write_text("x")  # unparsable name
        live = (directory / f"shard_def.json.{os.getppid()}.tmp")
        live.write_text("x")
        ShardCache(str(directory))
        names = set(os.listdir(directory))
        assert f"shard_abc.json.{dead_pid}.tmp" not in names
        assert "noise.tmp" not in names
        assert live.name in names  # another live writer's temp
        counters = telemetry.registry().snapshot()["counters"]
        assert counters["resilience.stale_temps_swept"] == 2

    def test_own_previous_incarnation_is_swept(self, tmp_path):
        directory = tmp_path / "cache"
        directory.mkdir()
        mine = directory / f"shard_abc.json.{os.getpid()}.tmp"
        mine.write_text("x")
        ShardCache(str(directory))
        assert not mine.exists()
