"""ChaosPolicy: spec grammar, determinism, and the switchboard."""

import pytest

from repro import telemetry
from repro.errors import ChaosFault
from repro.resilience import chaos
from repro.resilience.chaos import (FAULT_POINTS, ChaosPolicy,
                                    ChaosSpecError)


class TestSpecGrammar:
    def test_bare_seed(self):
        policy = ChaosPolicy.parse("42")
        assert policy.seed == 42
        assert policy.rates == {}

    def test_point_rates(self):
        policy = ChaosPolicy.parse(
            "7:worker_crash=0.25,disk_full=0.5")
        assert policy.seed == 7
        assert policy.rates == {"worker_crash": 0.25,
                                "disk_full": 0.5}

    def test_all_arms_every_point(self):
        policy = ChaosPolicy.parse("1:all=0.1")
        assert set(policy.rates) == set(FAULT_POINTS)
        assert all(rate == 0.1 for rate in policy.rates.values())

    def test_all_then_specific_override(self):
        policy = ChaosPolicy.parse("1:all=0.1,worker_hang=0")
        assert policy.rates["worker_hang"] == 0.0
        assert policy.rates["worker_crash"] == 0.1

    def test_hang_seconds(self):
        policy = ChaosPolicy.parse("3:worker_hang=1,hang_s=0.25")
        assert policy.hang_seconds == 0.25
        assert "hang_s" not in policy.rates

    def test_whitespace_tolerated(self):
        policy = ChaosPolicy.parse(" 5 : disk_full = 1.0 ")
        assert policy.seed == 5
        assert policy.rates == {"disk_full": 1.0}

    @pytest.mark.parametrize("spec", [
        "", "nope", "x:disk_full=1", "1:disk_full",
        "1:disk_full=lots", "1:made_up_point=0.5",
        "1:disk_full=1.5", "1:disk_full=-0.1",
    ])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ChaosSpecError):
            ChaosPolicy.parse(spec)

    def test_spec_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            ChaosPolicy.parse("broken")


class TestDeterminism:
    def test_decision_is_a_pure_function(self):
        a = ChaosPolicy.parse("9:all=0.3")
        b = ChaosPolicy.parse("9:all=0.3")
        keys = [f"key-{i}" for i in range(200)]
        for point in FAULT_POINTS:
            assert [a.should_fire(point, k) for k in keys] == \
                [b.should_fire(point, k) for k in keys]

    def test_seed_changes_the_plan(self):
        keys = [f"key-{i}" for i in range(200)]
        plans = {
            seed: tuple(ChaosPolicy(seed=seed,
                                    rates={"disk_full": 0.3})
                        .should_fire("disk_full", k) for k in keys)
            for seed in (1, 2)
        }
        assert plans[1] != plans[2]

    def test_points_are_independent(self):
        policy = ChaosPolicy.parse("11:all=0.3")
        keys = [f"key-{i}" for i in range(200)]
        crash = [policy.should_fire("worker_crash", k) for k in keys]
        hang = [policy.should_fire("worker_hang", k) for k in keys]
        assert crash != hang

    def test_rate_edges(self):
        policy = ChaosPolicy(seed=1, rates={"disk_full": 0.0,
                                            "block_poison": 1.0})
        assert not any(policy.should_fire("disk_full", f"k{i}")
                       for i in range(50))
        assert all(policy.should_fire("block_poison", f"k{i}")
                   for i in range(50))
        assert not policy.should_fire("write_oserror", "unarmed")

    def test_attempt_feeds_the_hash(self):
        policy = ChaosPolicy(seed=3, rates={"write_oserror": 0.5})
        decisions = {policy.should_fire("write_oserror", f"k{i}", 0) !=
                     policy.should_fire("write_oserror", f"k{i}", 1)
                     for i in range(100)}
        assert True in decisions  # transient semantics possible

    def test_rate_roughly_respected(self):
        policy = ChaosPolicy(seed=5, rates={"disk_full": 0.2})
        fired = sum(policy.should_fire("disk_full", f"key-{i}")
                    for i in range(2000))
        assert 250 < fired < 550  # ~400 expected


class TestSwitchboard:
    def test_off_by_default(self):
        assert chaos.active() is None
        assert not chaos.should_fire("disk_full", "k")

    def test_env_arms(self, monkeypatch):
        monkeypatch.setenv(chaos.ENV_VAR, "4:disk_full=1")
        policy = chaos.active()
        assert policy is not None
        assert policy.seed == 4
        assert chaos.should_fire("disk_full", "anything")

    def test_env_cache_tracks_changes(self, monkeypatch):
        monkeypatch.setenv(chaos.ENV_VAR, "4:disk_full=1")
        assert chaos.active().seed == 4
        monkeypatch.setenv(chaos.ENV_VAR, "5:disk_full=1")
        assert chaos.active().seed == 5

    def test_forced_overrides_env(self, monkeypatch):
        monkeypatch.setenv(chaos.ENV_VAR, "4:disk_full=1")
        with chaos.forced(ChaosPolicy(seed=8)):
            assert chaos.active().seed == 8
        with chaos.forced(None):  # forces chaos OFF despite env
            assert chaos.active() is None
        assert chaos.active().seed == 4

    def test_fire_accounts_in_telemetry(self):
        telemetry.enable()
        with chaos.forced(ChaosPolicy(seed=1,
                                      rates={"disk_full": 1.0})):
            assert chaos.fire("disk_full", "key")
            assert not chaos.fire("write_oserror", "key")
        counters = telemetry.registry().snapshot()["counters"]
        assert counters["resilience.fault_injected.disk_full"] == 1
        assert "resilience.fault_injected.write_oserror" not in counters

    def test_poison_raises_chaos_fault_without_counting(self):
        telemetry.enable()
        with chaos.forced(ChaosPolicy(seed=1,
                                      rates={"block_poison": 1.0})):
            with pytest.raises(ChaosFault) as err:
                chaos.poison("mov %rax, %rbx")
        assert err.value.point == "block_poison"
        counters = telemetry.registry().snapshot()["counters"]
        assert "resilience.fault_injected.block_poison" not in counters
