"""End-to-end chaos: every fault survives, reconciles, and is visible.

The acceptance run arms all seven fault points at once over a pooled
profiling run.  Because every chaos decision is a pure function of
``(seed, point, key)``, the test recomputes the exact fault plan from
the policy itself and holds the run report's resilience section to it
— no sleeps, no flakiness, same plan every run.

Also here: the transparent-chaos differential (injected faults must
not change output bytes), quarantine-based healing on the next run,
pool teardown on ``KeyboardInterrupt``, and the resilience section of
the telemetry run report.
"""

import json
import multiprocessing
import os
import time

import pytest

from repro import telemetry
from repro.corpus.dataset import build_application
from repro.eval.validation import CorpusProfile, profile_corpus_detailed
from repro.parallel import (ShardCache, profile_corpus_sharded,
                            shard_corpus)
from repro.parallel import engine
from repro.profiler.result import FailureReason
from repro.resilience import chaos
from repro.resilience.chaos import PIPELINE_FAULT_POINTS, ChaosPolicy
from repro.resilience.policy import RetryPolicy

#: All seven points armed; rates picked (with ``hang_s`` kept tiny so
#: hung workers recover within the test) so that every point fires at
#: least once for this corpus — ``_fault_plan`` asserts that, so a
#: corpus-generator change that invalidates the seed fails loudly.
ALL_FAULTS_SPEC = ("3:worker_crash=0.25,worker_hang=0.3,"
                   "cache_truncate=0.3,cache_garbage=0.3,"
                   "write_oserror=0.3,disk_full=0.2,"
                   "block_poison=0.1,hang_s=0.1")

#: Same plan minus the two points that legitimately change the output
#: (poisoned blocks are dropped; hangs only cost time, but keeping the
#: differential spec lean keeps the run fast).
TRANSPARENT_SPEC = ("3:worker_crash=0.25,cache_truncate=0.3,"
                    "cache_garbage=0.3,write_oserror=0.3,"
                    "disk_full=0.2")


@pytest.fixture(scope="module")
def corpus():
    return build_application("llvm", count=24, seed=3)


@pytest.fixture(scope="module")
def shards(corpus):
    return shard_corpus(corpus, 4)


@pytest.fixture(scope="module")
def baseline(corpus):
    """Clean serial ground truth for the byte-identity checks."""
    return profile_corpus_detailed(corpus, "haswell", seed=0)


def _bytes(profile):
    return json.dumps({"t": profile.throughputs, "f": profile.funnel})


def _fault_plan(policy, shards, corpus):
    """Recompute the exact expected injection counts from the policy.

    Mirrors the engine's semantics: crash beats hang per shard;
    ``write_oserror`` raises before the ``disk_full`` check on attempt
    0, so a shard with both counts only the former; post-write
    corruption needs a successful write (no ``disk_full``), truncate
    beats garbage.
    """
    digests = [s.digest for s in shards]
    crash = {d for d in digests if policy.should_fire("worker_crash", d)}
    hang = {d for d in digests
            if policy.should_fire("worker_hang", d) and d not in crash}
    oserr = {d for d in digests
             if policy.should_fire("write_oserror", d)}
    disk = {d for d in digests if policy.should_fire("disk_full", d)}
    trunc = {d for d in digests
             if policy.should_fire("cache_truncate", d)
             and d not in disk}
    garb = {d for d in digests
            if policy.should_fire("cache_garbage", d)
            and d not in trunc and d not in disk}
    poison = [r for r in corpus
              if policy.should_fire("block_poison", r.block.text())]
    plan = {"worker_crash": len(crash), "worker_hang": len(hang),
            "write_oserror": len(oserr), "disk_full": len(disk - oserr),
            "cache_truncate": len(trunc), "cache_garbage": len(garb),
            "block_poison": len(poison)}
    assert all(plan.values()), f"seed no longer covers every point: {plan}"
    return plan, disk


class TestAllFaultsAcceptance:
    def test_run_completes_reconciles_and_reports(self, corpus, shards,
                                                  tmp_path,
                                                  monkeypatch):
        telemetry.enable()
        monkeypatch.setenv(chaos.ENV_VAR, ALL_FAULTS_SPEC)
        plan, disk = _fault_plan(ChaosPolicy.parse(ALL_FAULTS_SPEC),
                                 shards, corpus)
        cache = ShardCache(str(tmp_path / "cache"))
        stats = {}
        profile = profile_corpus_sharded(
            corpus, "haswell", seed=0, jobs=2, shards=shards,
            cache=cache, stats=stats)

        # The funnel accounts for every block despite seven concurrent
        # failure modes: poisoned blocks land in the quarantined
        # bucket, everything else is accepted or dropped as usual.
        funnel = profile.funnel
        assert funnel["total"] == len(corpus)
        assert funnel["accepted"] + sum(funnel["dropped"].values()) \
            == funnel["total"]
        quarantined = funnel["dropped"][FailureReason.QUARANTINED.value]
        assert quarantined == plan["block_poison"]
        assert profile.info.get("chaos_block_poison") == quarantined

        # Every fault point is visible in the run report, with the
        # exact deterministic injection counts.
        report = telemetry.build_run_report(
            telemetry.registry(), name="chaos_acceptance",
            funnel={**funnel, "info": dict(profile.info)})
        resilience = report["resilience"]
        assert resilience["faults_injected"] == plan
        assert set(resilience["faults_injected"]) == set(PIPELINE_FAULT_POINTS)
        # Crashed shards escalated pool -> serial; transient write
        # errors were retried with backoff.
        assert resilience["retries"] >= \
            plan["worker_crash"] + plan["write_oserror"]
        assert resilience["backoff_ms"] > 0
        assert resilience["cache_write_failures"] == len(disk)
        assert stats["failed"] == 0

        # Next run, chaos off: corrupted survivors are quarantined and
        # healed, nothing crashes, the funnel still reconciles.
        monkeypatch.delenv(chaos.ENV_VAR)
        healed = profile_corpus_sharded(corpus, "haswell", seed=0,
                                        jobs=1, shards=shards,
                                        cache=cache)
        assert healed.funnel["total"] == len(corpus)
        assert healed.funnel["accepted"] + \
            sum(healed.funnel["dropped"].values()) == len(corpus)
        assert len(cache.quarantined_files()) == \
            plan["cache_truncate"] + plan["cache_garbage"]
        assert all(shard in cache for shard in shards)


class TestTransparentChaos:
    def test_output_bytes_are_unchanged(self, corpus, shards, baseline,
                                        tmp_path, monkeypatch):
        monkeypatch.setenv(chaos.ENV_VAR, TRANSPARENT_SPEC)
        cache = ShardCache(str(tmp_path / "cache"))
        pooled = profile_corpus_sharded(corpus, "haswell", seed=0,
                                        jobs=2, shards=shards,
                                        cache=cache)
        assert _bytes(pooled) == _bytes(baseline)

    def test_serial_run_is_also_unchanged(self, corpus, shards,
                                          baseline, tmp_path,
                                          monkeypatch):
        monkeypatch.setenv(chaos.ENV_VAR, TRANSPARENT_SPEC)
        cache = ShardCache(str(tmp_path / "cache"))
        serial = profile_corpus_sharded(corpus, "haswell", seed=0,
                                        jobs=1, shards=shards,
                                        cache=cache)
        assert _bytes(serial) == _bytes(baseline)


# ---------------------------------------------------------------------------
# Pool teardown (KeyboardInterrupt must reap every worker)
# ---------------------------------------------------------------------------

def _stub_profile(records) -> CorpusProfile:
    return CorpusProfile(
        throughputs={},
        funnel={"total": len(records), "accepted": 0,
                "dropped": {"worker_failure": len(records)}})


def worker_fast_then_hang(descriptor, config, index, records):
    """Picklable stub: first shard returns, the rest hang."""
    if index > 0:
        time.sleep(120)
    return index, _stub_profile(records)


class TestPoolTeardown:
    def test_keyboard_interrupt_reaps_the_pool(self, corpus,
                                               monkeypatch):
        def interrupt(profile):
            raise KeyboardInterrupt
        monkeypatch.setattr(engine, "_replicate_profiler_counters",
                            interrupt)
        with pytest.raises(KeyboardInterrupt):
            profile_corpus_sharded(corpus, "haswell", seed=0, jobs=2,
                                   shard_size=4,
                                   worker_fn=worker_fast_then_hang,
                                   shard_timeout=60.0)
        # The hung workers were terminated and reaped, not orphaned.
        deadline = time.time() + 15.0
        while multiprocessing.active_children() \
                and time.time() < deadline:
            time.sleep(0.05)
        assert multiprocessing.active_children() == []


# ---------------------------------------------------------------------------
# Resilience section of the run report (satellite: telemetry)
# ---------------------------------------------------------------------------

class TestResilienceReporting:
    def test_counters_flow_into_the_report(self):
        telemetry.enable()
        RetryPolicy(max_attempts=3).run(
            lambda attempt: "ok" if attempt else (_ for _ in ()).throw(
                OSError("transient")),
            key="shard-x", sleep=lambda s: None)
        telemetry.count("resilience.quarantined.blocks", 3)
        telemetry.count("resilience.quarantined.cache_files", 2)
        telemetry.count("resilience.stale_temps_swept")
        telemetry.count("resilience.resumed_shards", 4)
        report = telemetry.build_run_report(telemetry.registry(),
                                            name="resilience_report")
        resilience = report["resilience"]
        assert resilience["retries"] == 1
        assert resilience["backoff_ms"] > 0
        assert resilience["quarantined_blocks"] == 3
        assert resilience["quarantined_cache_files"] == 2
        assert resilience["stale_temps_swept"] == 1
        assert resilience["resumed_shards"] == 4

    def test_fault_counters_are_namespaced(self):
        telemetry.enable()
        chaos.account("disk_full", "shard-1")
        chaos.account("disk_full", "shard-2")
        chaos.account("worker_crash", "shard-3")
        report = telemetry.build_run_report(telemetry.registry(),
                                            name="faults")
        assert report["resilience"]["faults_injected"] == \
            {"disk_full": 2, "worker_crash": 1}

    def test_summary_renders_only_when_nonzero(self):
        telemetry.enable()
        quiet = telemetry.build_run_report(telemetry.registry(),
                                           name="quiet")
        assert "resilience" not in telemetry.render_summary(quiet)
        telemetry.count("resilience.retries", 2)
        chaos.account("write_oserror", "k")
        loud = telemetry.build_run_report(telemetry.registry(),
                                          name="loud")
        summary = telemetry.render_summary(loud)
        assert "resilience" in summary
        assert "write_oserror" in summary
