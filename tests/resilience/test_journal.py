"""RunJournal: durability, torn lines, and identity pinning."""

import json

from repro.resilience.journal import (JOURNAL_NAME, RunJournal,
                                      journal_line)

META = {"uarch": "haswell", "seed": 0, "shards": 3,
        "corpus": "deadbeef"}


def _journal(tmp_path):
    return RunJournal(str(tmp_path / JOURNAL_NAME))


class TestRoundTrip:
    def test_fresh_journal_has_no_completions(self, tmp_path):
        journal = _journal(tmp_path)
        assert journal.open(META) == {}
        assert not journal.resumed
        journal.close()

    def test_completions_survive_reopen(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.open(META)
            journal.record_shard("aaa-0", 0, 111)
            journal.record_shard("bbb-1", 1, 222)

        resumed = _journal(tmp_path)
        assert resumed.open(META) == {"aaa-0": 111, "bbb-1": 222}
        assert resumed.resumed
        resumed.close()

    def test_latest_record_for_a_digest_wins(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.open(META)
            journal.record_shard("aaa-0", 0, 111)
            journal.record_shard("aaa-0", 0, 999)
        resumed = _journal(tmp_path)
        assert resumed.open(META) == {"aaa-0": 999}
        resumed.close()


class TestTornLines:
    def test_torn_final_line_is_dropped(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.open(META)
            journal.record_shard("aaa-0", 0, 111)
            journal.record_shard("bbb-1", 1, 222)
        path = tmp_path / JOURNAL_NAME
        data = path.read_text()
        path.write_text(data[:-15])  # SIGKILL mid-write

        resumed = _journal(tmp_path)
        assert resumed.open(META) == {"aaa-0": 111}
        assert resumed.torn_records == 1
        assert resumed.resumed
        resumed.close()

    def test_bit_flip_fails_the_self_check(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.open(META)
            journal.record_shard("aaa-0", 0, 111)
        path = tmp_path / JOURNAL_NAME
        lines = path.read_text().splitlines()
        lines[-1] = lines[-1].replace('"checksum": 111',
                                     '"checksum": 112')
        path.write_text("\n".join(lines) + "\n")

        resumed = _journal(tmp_path)
        assert resumed.open(META) == {}
        assert resumed.torn_records == 1
        resumed.close()

    def test_garbage_journal_starts_fresh(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        path.write_text("\x00 not json at all {{{\n")
        journal = _journal(tmp_path)
        assert journal.open(META) == {}
        assert not journal.resumed
        journal.close()


class TestIdentityPinning:
    def test_different_meta_rotates_the_journal(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.open(META)
            journal.record_shard("aaa-0", 0, 111)

        other = dict(META, corpus="cafef00d")
        fresh = _journal(tmp_path)
        assert fresh.open(other) == {}
        assert not fresh.resumed
        fresh.close()
        # The old run's completions are gone for good.
        again = _journal(tmp_path)
        assert again.open(META) == {}
        again.close()

    def test_wrong_version_rotates(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        begin = journal_line({"kind": "begin", "version": 999,
                           "meta": META})
        shard = journal_line({"kind": "shard", "digest": "aaa-0",
                           "index": 0, "checksum": 111})
        path.write_text(begin + "\n" + shard + "\n")
        journal = _journal(tmp_path)
        assert journal.open(META) == {}
        journal.close()

    def test_resume_appends_a_resume_record(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.open(META)
            journal.record_shard("aaa-0", 0, 111)
        with _journal(tmp_path) as journal:
            journal.open(META)
        lines = (tmp_path / JOURNAL_NAME).read_text().splitlines()
        kinds = [json.loads(line)["rec"]["kind"] for line in lines]
        assert kinds == ["begin", "shard", "resume"]
