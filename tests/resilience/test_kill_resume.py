"""SIGKILL mid-run, then ``--resume``: byte-identical output.

The acceptance matrix for crash-safe resume: every microarchitecture,
serial and pooled, and the all-slow-paths configuration (fast path and
block plans disabled).  Each case runs the subprocess driver three
times — an uninterrupted baseline, a run SIGKILLed (whole process
group, so pool workers die too) once at least two shards are durably
cached, and a resume over the killed run's cache+journal — and
compares the resumed output byte-for-byte against the baseline.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
DRIVER = os.path.join(ROOT, "tests", "resilience", "_resume_driver.py")

#: 8 shards x this per-store sleep gives the parent a multi-second
#: window to observe two completed shards and kill the group.
STORE_SLEEP = "0.25"
SHARDS = 8

CASES = [
    pytest.param("ivybridge", 1, {}, id="ivybridge-serial"),
    pytest.param("haswell", 2, {}, id="haswell-pooled"),
    pytest.param("skylake", 2, {}, id="skylake-pooled"),
    pytest.param("haswell", 1,
                 {"REPRO_NO_FASTPATH": "1", "REPRO_NO_BLOCKPLAN": "1"},
                 id="haswell-serial-slowpaths"),
    pytest.param("haswell", 2,
                 {"REPRO_NO_LANES": "0",
                  "RESUME_DRIVER_CORPUS": "lanes"},
                 id="haswell-pooled-lanes"),
    # Streamed legs: the generator is killed mid-stream, and the
    # resumed streamed run must reproduce the baseline bytes from the
    # journal + cache alone (serial and pooled, all three uarches).
    pytest.param("ivybridge", 1, {"RESUME_DRIVER_STREAM": "1"},
                 id="ivybridge-serial-stream"),
    pytest.param("haswell", 2, {"RESUME_DRIVER_STREAM": "1"},
                 id="haswell-pooled-stream"),
    pytest.param("skylake", 2, {"RESUME_DRIVER_STREAM": "1"},
                 id="skylake-pooled-stream"),
]


def _env(extra, sleep="0"):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    env.pop("REPRO_CHAOS", None)
    env["RESUME_DRIVER_SLEEP"] = sleep
    env.update(extra)
    return env


def _launch(cache_dir, out, uarch, jobs, extra, sleep="0"):
    return subprocess.Popen(
        [sys.executable, DRIVER, str(cache_dir), str(out), uarch,
         str(jobs)],
        env=_env(extra, sleep), start_new_session=True)


def _run(cache_dir, out, uarch, jobs, extra):
    proc = _launch(cache_dir, out, uarch, jobs, extra)
    assert proc.wait(timeout=300) == 0
    with open(out) as fh:
        return json.load(fh)


def _shard_files(cache_dir):
    try:
        return [name for name in os.listdir(cache_dir)
                if name.startswith("shard_")
                and name.endswith(".json")]
    except OSError:
        return []


def _kill_mid_run(cache_dir, out, uarch, jobs, extra):
    """Start a slowed run and SIGKILL its process group once at least
    two shards are durably cached.  Returns completed-shard count."""
    proc = _launch(cache_dir, out, uarch, jobs, extra,
                   sleep=STORE_SLEEP)
    deadline = time.time() + 120.0
    try:
        while time.time() < deadline:
            if len(_shard_files(cache_dir)) >= 2:
                break
            if proc.poll() is not None:
                pytest.fail("driver finished before it could be "
                            "killed; raise STORE_SLEEP")
            time.sleep(0.02)
        os.killpg(proc.pid, signal.SIGKILL)
    finally:
        try:
            os.killpg(proc.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        proc.wait(timeout=30)
    completed = len(_shard_files(cache_dir))
    assert completed < SHARDS, "kill landed after the run finished"
    return completed


@pytest.mark.parametrize("uarch,jobs,extra", CASES)
def test_killed_run_resumes_to_identical_bytes(tmp_path, uarch, jobs,
                                               extra):
    baseline_cache = tmp_path / "baseline-cache"
    killed_cache = tmp_path / "killed-cache"
    baseline_out = tmp_path / "baseline.json"
    resumed_out = tmp_path / "resumed.json"

    baseline = _run(baseline_cache, baseline_out, uarch, jobs, extra)
    completed = _kill_mid_run(killed_cache, tmp_path / "ignored.json",
                              uarch, jobs, extra)

    resumed = _run(killed_cache, resumed_out, uarch, jobs, extra)

    # Byte-identical merged output, not merely equal numbers.
    assert json.dumps(resumed["profile"]) == \
        json.dumps(baseline["profile"])
    # The resume actually consumed the journal: every shard the killed
    # run completed was loaded back (checksum-verified), the rest were
    # profiled fresh.
    assert resumed["stats"]["resumed"] >= min(2, completed)
    assert resumed["stats"]["resumed"] + resumed["stats"]["profiled"] \
        == SHARDS
    assert len(_shard_files(killed_cache)) == SHARDS
