"""RetryPolicy, strict/salvage, and the executor step budget."""

import pytest

from repro import telemetry
from repro.errors import StepBudgetExceeded, StrictModeViolation
from repro.isa.parser import parse_block
from repro.profiler import BasicBlockProfiler
from repro.profiler.result import FailureReason
from repro.resilience import policy
from repro.resilience.policy import RetryPolicy
from repro.runtime.executor import Executor
from repro.uarch import Machine


class TestBackoff:
    def test_deterministic_across_instances(self):
        a, b = RetryPolicy(seed=3), RetryPolicy(seed=3)
        for attempt in (1, 2, 3):
            assert a.backoff_ms("key", attempt) == \
                b.backoff_ms("key", attempt)

    def test_jitter_bounds_and_growth(self):
        retry = RetryPolicy(base_ms=10.0, multiplier=2.0,
                            max_ms=1000.0)
        for attempt, base in ((1, 10.0), (2, 20.0), (3, 40.0)):
            for key in ("a", "b", "c"):
                delay = retry.backoff_ms(key, attempt)
                assert base * 0.5 <= delay < base * 1.5

    def test_backoff_capped_at_max(self):
        retry = RetryPolicy(base_ms=10.0, multiplier=10.0, max_ms=50.0)
        assert retry.backoff_ms("k", 9) < 50.0 * 1.5

    def test_keys_desynchronise(self):
        retry = RetryPolicy()
        delays = {retry.backoff_ms(f"key-{i}", 1) for i in range(20)}
        assert len(delays) > 1

    def test_seed_changes_jitter(self):
        assert RetryPolicy(seed=1).backoff_ms("k", 1) != \
            RetryPolicy(seed=2).backoff_ms("k", 1)


class TestRetryRun:
    def test_succeeds_after_transient_failures(self):
        telemetry.enable()
        slept = []
        calls = []

        def flaky(attempt):
            calls.append(attempt)
            if attempt < 2:
                raise OSError("transient")
            return "ok"

        result = RetryPolicy(max_attempts=3).run(
            flaky, key="shard-1", sleep=slept.append)
        assert result == "ok"
        assert calls == [0, 1, 2]
        assert len(slept) == 2
        counters = telemetry.registry().snapshot()["counters"]
        assert counters["resilience.retries"] == 2
        backoff = telemetry.registry() \
            .histogram("resilience.backoff_ms").summary()
        assert backoff["count"] == 2

    def test_final_exception_propagates(self):
        def always_fails(attempt):
            raise OSError(f"attempt {attempt}")

        with pytest.raises(OSError, match="attempt 2"):
            RetryPolicy(max_attempts=3).run(
                always_fails, key="k", sleep=lambda s: None)

    def test_only_retry_on_listed_exceptions(self):
        calls = []

        def fails(attempt):
            calls.append(attempt)
            raise ValueError("not retryable")

        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=3).run(
                fails, key="k", sleep=lambda s: None)
        assert calls == [0]

    def test_no_sleep_on_first_attempt(self):
        slept = []
        RetryPolicy().run(lambda attempt: "ok", key="k",
                          sleep=slept.append)
        assert slept == []


class TestStrictSalvage:
    def test_salvage_is_the_default(self):
        assert not policy.strict_mode()
        policy.quarantine_or_raise("anything")  # no raise

    def test_env_arms_strict(self, monkeypatch):
        monkeypatch.setenv(policy.ENV_STRICT, "1")
        assert policy.strict_mode()
        with pytest.raises(StrictModeViolation):
            policy.quarantine_or_raise("corrupt file", "detail")

    def test_env_zero_is_salvage(self, monkeypatch):
        monkeypatch.setenv(policy.ENV_STRICT, "0")
        assert not policy.strict_mode()

    def test_forced_strict_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(policy.ENV_STRICT, "1")
        with policy.forced_strict(False):
            policy.quarantine_or_raise("ok in salvage")
        with pytest.raises(StrictModeViolation):
            policy.quarantine_or_raise("strict again")

    def test_violation_carries_what_and_detail(self):
        with policy.forced_strict(True):
            with pytest.raises(StrictModeViolation) as err:
                policy.quarantine_or_raise("the what", "the detail")
        assert err.value.what == "the what"
        assert err.value.detail == "the detail"


class TestStepBudget:
    def test_default(self):
        assert policy.step_budget() == policy.DEFAULT_STEP_BUDGET

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(policy.ENV_STEP_BUDGET, "1234")
        assert policy.step_budget() == 1234
        monkeypatch.setenv(policy.ENV_STEP_BUDGET, "99")
        assert policy.step_budget() == 99

    def test_forced_budget_restores(self):
        with policy.forced_step_budget(10):
            assert policy.step_budget() == 10
        assert policy.step_budget() == policy.DEFAULT_STEP_BUDGET

    def test_executor_trips_the_watchdog(self, haswell):
        from repro.profiler.environment import Environment
        block = parse_block("add $1, %rax\nadd $1, %rbx")
        env = Environment()
        env.reset()
        executor = Executor(env.state, env.memory)
        with policy.forced_step_budget(5):
            with pytest.raises(StepBudgetExceeded) as err:
                executor.execute_block(block, unroll=100)
        assert err.value.budget == 5
        assert err.value.steps > 5
        # Honest work under the budget is untouched.
        trace = executor.execute_block(block, unroll=100)
        assert len(trace.events) == 200

    def test_harness_quarantines_a_tripped_block(self):
        profiler = BasicBlockProfiler(Machine("haswell"))
        with policy.forced_step_budget(1):
            result = profiler.profile("add $1, %rax\nadd $1, %rbx")
        assert result.failure is FailureReason.QUARANTINED
        assert "StepBudgetExceeded" in result.detail
        assert result.extra.get("step_budget_exceeded") == 1.0

    def test_harness_raises_in_strict_mode(self):
        profiler = BasicBlockProfiler(Machine("haswell"))
        with policy.forced_step_budget(1), policy.forced_strict(True):
            with pytest.raises(StrictModeViolation):
                profiler.profile("add $1, %rax\nadd $1, %rbx")
