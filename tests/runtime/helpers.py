"""Shared executor-test plumbing."""

from repro.isa.parser import parse_block
from repro.isa.registers import lookup
from repro.runtime.executor import Executor
from repro.runtime.memory import PhysicalPage, VirtualMemory, page_of
from repro.runtime.state import MachineState


class Harness:
    """A mapped, initialised machine for direct semantic tests."""

    def __init__(self, ftz: bool = False, fill: int = 0x12345600):
        self.state = MachineState()
        self.state.initialize(ftz=ftz)
        self.memory = VirtualMemory()
        self.frame = PhysicalPage()
        self.frame.fill(fill)
        self.executor = Executor(self.state, self.memory)

    def map(self, address: int) -> None:
        self.memory.map_page(page_of(address), self.frame)

    def set_reg(self, name: str, value: int) -> None:
        self.state.write(lookup(name), value)

    def reg(self, name: str) -> int:
        return self.state.read(lookup(name))

    def flag(self, name: str) -> bool:
        return self.state.flags[name]

    def run(self, text: str, unroll: int = 1):
        block = parse_block(text)
        # Map every page the block will touch by replaying faults.
        from repro.errors import MemoryFault
        snapshot_gpr = dict(self.state.gpr)
        snapshot_vec = dict(self.state.vec)
        snapshot_flags = dict(self.state.flags)
        for _ in range(128):
            try:
                self.state.gpr = dict(snapshot_gpr)
                self.state.vec = dict(snapshot_vec)
                self.state.flags = dict(snapshot_flags)
                return self.executor.execute_block(block, unroll=unroll)
            except MemoryFault as fault:
                self.map(fault.address)
        raise AssertionError("too many faults in test harness")
