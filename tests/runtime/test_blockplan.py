"""Block-compiled plans vs the interpreted loop.

Every compiled semantic is run through ``execute_block`` twice — plans
forced on and forced off — on otherwise identical machines, and the
final architectural state *and* the full event trace (accesses in
order, subnormal marks, div classes) must match exactly.  Cache
behaviour (symbolic sharing, per-executor binding, overflow clearing),
fault identity through the fallback path, the escape hatch, and the
page-translation fast path are pinned separately.
"""

import pytest

from repro.errors import ArithmeticFault, MemoryFault
from repro.isa.parser import parse_block
from repro.runtime import blockplan, plan
from repro.runtime.executor import Executor
from repro.runtime.memory import (PAGE_SIZE, PhysicalPage,
                                  VirtualMemory, page_of)
from repro.runtime.state import MachineState

from tests.runtime.helpers import Harness


def _trace_fingerprint(trace):
    return tuple(
        (e.index, e.slot,
         tuple((a.address, a.width, a.is_write) for a in e.accesses),
         e.subnormal, e.div_class)
        for e in trace)


def _run(text: str, enabled: bool, unroll: int = 1, ftz: bool = False):
    """Fresh machine -> (gpr, vec, flags, rip, trace fingerprint)."""
    with blockplan.forced(enabled):
        h = Harness(ftz=ftz)
        trace = h.run(text, unroll=unroll)
        return (dict(h.state.gpr), dict(h.state.vec),
                dict(h.state.flags), h.state.rip,
                _trace_fingerprint(trace))


#: One block per compiled-semantic family (plus fallback ops mixed in
#: so compiled and interpreted steps interleave within one plan).
BLOCKS = [
    # moves, extensions, lea, xchg
    "mov $0x1234, %rax\nmov %rax, %rbx\nmov %ebx, %ecx",
    "movzx %al, %rbx\nmovsx %al, %rcx\nmovsx %eax, %rdx",
    "lea 8(%rdi), %rax\nlea (%rdi,%rsi,4), %rbx\n"
    "lea 0x2000, %rcx\nlea -16(,%rsi,8), %rdx",
    "xchg %rax, %rbx\nxchg %ecx, %edx",
    # binary ALU with reg/imm/mem forms, carry ops
    "add %rax, %rbx\nsub $0x7f, %rbx\nand %rcx, %rbx\n"
    "or $-2, %rbx\nxor %ebx, %eax",
    "add (%r14), %rax\nadd %rax, 8(%r14)\nsub $1, (%r14)",
    "add $-1, %rax\nadc $0, %rbx\nsub %rcx, %rdx\nsbb %rbx, %rax",
    # compares, conditional families
    "cmp %rax, %rbx\nsete %cl\nsetl %dl\ncmovg %rax, %rsi",
    "test %rax, %rax\nsetnz %bl\ncmovz %rcx, %rdx\ncmovnz %ecx, %edx",
    "cmp $0x40, %al\nsetb %bl\nseta %cl\nsetbe %dl",
    # inc/dec/neg/not/bt/bswap
    "inc %rax\ndec %ebx\nneg %rcx\nnot %edx",
    "bt $3, %rax\nbt %rcx, %rbx\nbswap %rax\nbswap %ebx",
    # shifts and rotates, incl. cl counts and masked-to-zero counts
    "shl $3, %rax\nshr $1, %ebx\nsar $4, %rcx\nrol $7, %rdx\n"
    "ror $9, %esi",
    "mov $65, %rcx\nshl %cl, %rax\nshr %cl, %rbx\nsar %cl, %rdx",
    "mov $64, %rcx\nshl %cl, %rax\nror %cl, %rbx",  # masked count 0
    # stack ops
    "push %rax\npush %rbx\npop %rcx\npop %rdx\npush %rsi\npop %rdi",
    # widening/convert helpers and imul forms
    "cdq\ncqo\ncdqe\nnop",
    "imul %rbx, %rax\nimul $3, %rcx, %rdx\nimul %esi, %edi",
    # vector bitwise / moves / transfers
    "vxorps %xmm0, %xmm0, %xmm0\nvandps %xmm2, %xmm1, %xmm0\n"
    "pxor %xmm3, %xmm3\npand %xmm1, %xmm2\npor %xmm1, %xmm3",
    "movss %xmm1, %xmm0\nmovss (%r14), %xmm2\nmovss %xmm2, 4(%r14)\n"
    "movsd %xmm1, %xmm3\nmovaps %xmm0, %xmm4",
    "movaps (%r14), %xmm0\nmovups %xmm0, 16(%r14)\n"
    "movdqa %xmm0, %xmm5\nmovq %rax, %xmm6\nmovd %xmm6, %ecx",
    # FP arithmetic (scalar merge + packed) and FMA orderings
    "addss %xmm1, %xmm0\nmulsd %xmm1, %xmm2\naddps %xmm1, %xmm3\n"
    "mulps %xmm2, %xmm3\nsubpd %xmm1, %xmm4",
    "divss %xmm1, %xmm0\nsqrtss %xmm1, %xmm2\nsqrtps %xmm3, %xmm4",
    "vfmadd213ps %xmm2, %xmm1, %xmm0\n"
    "vfmadd231ps %xmm2, %xmm1, %xmm0\n"
    "vfnmadd231ps %xmm2, %xmm1, %xmm0",
    # compiled steps interleaved with interpreter fallbacks
    "add %rax, %rbx\ncvtsi2ss %eax, %xmm0\nmulss %xmm0, %xmm1\n"
    "cvttss2si %xmm1, %ecx\nshufps $0b01000100, %xmm1, %xmm0",
    "mov $7, %rax\nxor %edx, %edx\nmov $3, %rcx\ndiv %rcx\n"
    "add %rdx, %rax",
    "pshufd $0, %xmm1, %xmm0\npaddd %xmm1, %xmm0\n"
    "vxorps %xmm2, %xmm2, %xmm2\npcmpeqd %xmm1, %xmm0",
]


@pytest.mark.parametrize("index", range(len(BLOCKS)))
def test_compiled_matches_interpreted(index):
    text = BLOCKS[index]
    assert _run(text, True) == _run(text, False)


@pytest.mark.parametrize("index", [0, 4, 13, 15, 19, 21, 24])
def test_compiled_matches_interpreted_unrolled(index):
    text = BLOCKS[index]
    assert _run(text, True, unroll=7) == _run(text, False, unroll=7)


def test_ftz_and_subnormal_marks_match():
    # 0x00000001 lanes are subnormal f32s: assists fire (FTZ off)
    # or flush (FTZ on) — identically in both modes.
    text = ("movss (%r14), %xmm0\nmovss 4(%r14), %xmm1\n"
            "mulss %xmm1, %xmm0\naddps %xmm1, %xmm2")
    for ftz in (False, True):
        on = _run(text, True, ftz=ftz)
        off = _run(text, False, ftz=ftz)
        assert on == off


# ---------------------------------------------------------------------------
# Caches
# ---------------------------------------------------------------------------

def test_symbolic_plans_shared_between_equal_blocks():
    plan.clear_plan_cache()
    a = parse_block("add %rax, %rbx\nimul %rcx, %rbx")
    b = parse_block("add %rax, %rbx\nimul %rcx, %rbx")
    assert a == b and a is not b
    assert plan.compiled_plan(a) is plan.compiled_plan(b)
    plan.clear_plan_cache()
    assert not plan._symbolic


def test_symbolic_cache_overflow_clears(monkeypatch):
    plan.clear_plan_cache()
    monkeypatch.setattr(plan, "_MAX_SYMBOLIC", 2)
    blocks = [parse_block(f"add ${i}, %rax") for i in range(1, 4)]
    for block in blocks[:2]:
        plan.compiled_plan(block)
    assert len(plan._symbolic) == 2
    plan.compiled_plan(blocks[2])  # overflow: wholesale clear
    assert set(plan._symbolic) == {blocks[2]}
    plan.clear_plan_cache()


def test_bound_plans_cached_per_executor(monkeypatch):
    block = parse_block("add %rax, %rbx")
    state = MachineState()
    state.initialize()
    ex = Executor(state, VirtualMemory())
    steps = plan.bound_plan(ex, block)
    assert plan.bound_plan(ex, block) is steps
    other = Executor(state, VirtualMemory())
    assert plan.bound_plan(other, block) is not steps

    monkeypatch.setattr(plan, "_MAX_BOUND", 2)
    plan.bound_plan(ex, parse_block("inc %rax"))
    plan.bound_plan(ex, parse_block("dec %rax"))  # overflow: clear
    assert block not in ex._plans


# ---------------------------------------------------------------------------
# Fault identity
# ---------------------------------------------------------------------------

def _fresh_executor():
    state = MachineState()
    state.initialize()
    return Executor(state, VirtualMemory())


def test_memory_fault_identical_without_mapping():
    block = parse_block("add %rax, %rbx\nmov (%r14), %rcx")
    faults = []
    for enabled in (True, False):
        with blockplan.forced(enabled):
            ex = _fresh_executor()
            with pytest.raises(MemoryFault) as excinfo:
                ex.execute_block(block, unroll=1)
            faults.append((excinfo.value.address,
                           excinfo.value.is_write))
    assert faults[0] == faults[1]


def test_arithmetic_fault_identical_through_fallback():
    block = parse_block("xor %edx, %edx\nxor %ecx, %ecx\ndiv %rcx")
    for enabled in (True, False):
        with blockplan.forced(enabled):
            ex = _fresh_executor()
            with pytest.raises(ArithmeticFault):
                ex.execute_block(block, unroll=1)


# ---------------------------------------------------------------------------
# Escape hatch
# ---------------------------------------------------------------------------

def test_env_var_disables_blockplan(monkeypatch):
    monkeypatch.setenv("REPRO_NO_BLOCKPLAN", "1")
    blockplan.set_enabled(None)  # defer to the environment
    try:
        assert not blockplan.enabled()
        monkeypatch.setenv("REPRO_NO_BLOCKPLAN", "0")
        assert blockplan.enabled()
        monkeypatch.delenv("REPRO_NO_BLOCKPLAN")
        assert blockplan.enabled()
    finally:
        blockplan.set_enabled(None)


def test_forced_restores_previous_setting():
    assert blockplan.enabled()
    with blockplan.forced(False):
        assert not blockplan.enabled()
        with blockplan.forced(True):
            assert blockplan.enabled()
        assert not blockplan.enabled()
    assert blockplan.enabled()


# ---------------------------------------------------------------------------
# Page-translation fast path
# ---------------------------------------------------------------------------

ADDR = 0x40000


def test_fast_path_sees_fill_through_cached_page_object():
    with blockplan.forced(True):
        memory = VirtualMemory()
        frame = PhysicalPage()
        frame.fill(0x11111100)
        memory.map_page(page_of(ADDR), frame)
        assert memory.read_int(ADDR, 4) == 0x11111100
        assert memory._fast_vpage == page_of(ADDR)  # cache is seeded
        frame.fill(0x22222200)  # replaces frame.data wholesale
        assert memory.read_int(ADDR, 4) == 0x22222200
        memory.write_int(ADDR + 8, 4, 0xDEADBEEF)
        assert memory.read_bytes(ADDR + 8, 4) == \
            (0xDEADBEEF).to_bytes(4, "little")


def test_fast_path_invalidated_by_remap_and_unmap():
    with blockplan.forced(True):
        memory = VirtualMemory()
        a, b = PhysicalPage(), PhysicalPage()
        a.fill(0xAAAAAA00)
        b.fill(0xBBBBBB00)
        memory.map_page(page_of(ADDR), a)
        assert memory.read_int(ADDR, 4) == 0xAAAAAA00
        memory.map_page(page_of(ADDR), b)  # remap invalidates
        assert memory._fast_vpage == -1
        assert memory.read_int(ADDR, 4) == 0xBBBBBB00
        memory.unmap_all()
        assert memory._fast_vpage == -1
        with pytest.raises(MemoryFault):
            memory.read_int(ADDR, 4)


def test_fast_path_defers_on_page_spanning_access():
    with blockplan.forced(True):
        memory = VirtualMemory()
        a, b = PhysicalPage(), PhysicalPage()
        memory.map_page(page_of(ADDR), a)
        memory.map_page(page_of(ADDR) + 1, b)
        boundary = ADDR + PAGE_SIZE - 4
        memory.write_int(boundary, 8, 0x1122334455667788)
        assert memory.read_int(boundary, 8) == 0x1122334455667788
        assert a.data[-4:] == bytes.fromhex("88776655")
        assert b.data[:4] == bytes.fromhex("44332211")


def test_fast_path_not_seeded_when_disabled():
    with blockplan.forced(False):
        memory = VirtualMemory()
        frame = PhysicalPage()
        memory.map_page(page_of(ADDR), frame)
        memory.read_int(ADDR, 4)
        memory.write_int(ADDR, 4, 7)
        assert memory._fast_vpage == -1
        assert memory._fast_page is None
