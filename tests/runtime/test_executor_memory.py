"""Functional semantics: memory access, addressing, the CRC example."""

import pytest

from repro.errors import MemoryFault
from repro.runtime.state import INIT_CONSTANT
from tests.runtime.helpers import Harness


class TestLoadsStores:
    def test_store_then_load(self):
        h = Harness()
        h.set_reg("rdi", 0x5000)
        h.map(0x5000)
        h.run("mov $0x1234, %rax\nmov %rax, 8(%rdi)\nmov 8(%rdi), %rbx")
        assert h.reg("rbx") == 0x1234

    def test_rmw(self):
        h = Harness()
        h.set_reg("rdi", 0x5000)
        h.map(0x5000)
        h.run("mov $5, %rax\nmov %rax, (%rdi)\naddq $3, (%rdi)")
        assert h.memory.read_int(0x5000, 8) == 8

    def test_byte_store(self):
        h = Harness()
        h.set_reg("rdi", 0x5000)
        h.map(0x5000)
        h.run("mov $0xAB, %rax\nmov %al, 3(%rdi)")
        assert h.memory.read_int(0x5003, 1) == 0xAB

    def test_indexed_addressing(self):
        h = Harness()
        h.set_reg("rdi", 0x5000)
        h.set_reg("rcx", 4)
        h.map(0x5000)
        trace = h.run("mov 8(%rdi, %rcx, 2), %rax")
        assert trace.events[0].accesses[0].address == 0x5000 + 8 + 8

    def test_trace_records_width_and_kind(self):
        h = Harness()
        h.set_reg("rdi", 0x5000)
        h.map(0x5000)
        trace = h.run("mov %eax, (%rdi)")
        access = trace.events[0].accesses[0]
        assert access.is_write and access.width == 4

    def test_push_pop(self):
        h = Harness()
        h.set_reg("rsp", 0x6000)
        h.map(0x6000 - 8)
        h.set_reg("rax", 77)
        h.run("push %rax\npop %rbx")
        assert h.reg("rbx") == 77
        assert h.reg("rsp") == 0x6000

    def test_fault_propagates_address(self):
        h = Harness()
        h.set_reg("rdi", 0x7000)
        with pytest.raises(MemoryFault) as exc:
            h.executor.execute_block(
                __import__("repro.isa", fromlist=["parse_block"])
                .parse_block("mov (%rdi), %rax"), 1)
        assert exc.value.address == 0x7000


class TestCrcExample:
    """Paper Fig. 1: the pointer chain works exactly as described."""

    CRC = """
        add $1, %rdi
        mov %edx, %eax
        shr $8, %rdx
        xor -1(%rdi), %al
        movzx %al, %eax
        xor 0x41108(, %rax, 8), %rdx
        cmp %rcx, %rdi
    """

    def test_executes_under_canonical_environment(self):
        h = Harness()
        trace = h.run(self.CRC, unroll=4)
        assert len(trace) == 28
        loads = [a for a in trace.accesses if not a.is_write]
        assert len(loads) == 8  # two loads per iteration

    def test_table_index_derives_from_loaded_byte(self):
        h = Harness()
        trace = h.run(self.CRC, unroll=1)
        table_load = trace.events[5].accesses[0]
        # Address = 0x41108 + 8 * al where al is a pattern byte.
        assert (table_load.address - 0x41108) % 8 == 0
        index = (table_load.address - 0x41108) // 8
        assert 0 <= index <= 0xFF

    def test_pointer_advances_each_iteration(self):
        h = Harness()
        trace = h.run(self.CRC, unroll=3)
        byte_loads = [e.accesses[0] for e in trace.events
                      if e.slot == 3]
        addresses = [a.address for a in byte_loads]
        assert addresses[1] == addresses[0] + 1
        assert addresses[2] == addresses[1] + 1

    def test_reinitialized_traces_are_identical(self):
        """Fig. 2's correctness argument: re-init -> same trace."""
        h = Harness()
        first = h.run(self.CRC, unroll=4).address_signature()
        h.state.initialize()
        second = h.run(self.CRC, unroll=4).address_signature()
        assert first == second


class TestInitConstantChains:
    def test_dword_loaded_values_are_mappable_pointers(self):
        h = Harness()
        h.set_reg("rdi", INIT_CONSTANT)
        h.map(INIT_CONSTANT)
        h.run("mov (%rdi), %ebx")
        loaded = h.reg("rbx")
        from repro.runtime.memory import is_valid_address
        assert is_valid_address(loaded)

    def test_dword_double_indirection(self):
        """Load a 32-bit pointer, then dereference it (the paper's
        rationale for the 'moderately sized' fill constant)."""
        h = Harness()
        h.set_reg("rdi", INIT_CONSTANT)
        trace = h.run("mov (%rdi), %ebx\nmov (%rbx), %rcx")
        assert len(list(trace.accesses)) == 2

    def test_qword_pointer_chase_is_unmappable(self):
        """Qword-loaded fill values exceed user space: the block is
        unprofileable, matching the real suite's behaviour."""
        from repro.errors import InvalidAddressFault
        import pytest
        h = Harness()
        h.set_reg("rdi", INIT_CONSTANT)
        h.map(INIT_CONSTANT)
        with pytest.raises(InvalidAddressFault):
            h.executor.execute_block(
                __import__("repro.isa", fromlist=["parse_block"])
                .parse_block("mov (%rdi), %rbx\nmov (%rbx), %rcx"), 1)
