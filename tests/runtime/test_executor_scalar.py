"""Functional semantics: scalar integer instructions."""

import pytest

from repro.errors import ArithmeticFault, UnsupportedInstructionError
from tests.runtime.helpers import Harness


class TestAlu:
    def test_add(self):
        h = Harness()
        h.set_reg("rax", 5)
        h.set_reg("rbx", 7)
        h.run("add %rbx, %rax")
        assert h.reg("rax") == 12

    def test_add_carry_flag(self):
        h = Harness()
        h.set_reg("rax", (1 << 64) - 1)
        h.set_reg("rbx", 1)
        h.run("add %rbx, %rax")
        assert h.reg("rax") == 0
        assert h.flag("cf") and h.flag("zf")

    def test_signed_overflow_flag(self):
        h = Harness()
        h.set_reg("eax", 0x7FFFFFFF)
        h.set_reg("ebx", 1)
        h.run("add %ebx, %eax")
        assert h.flag("of") and h.flag("sf") and not h.flag("cf")

    def test_sub_borrow(self):
        h = Harness()
        h.set_reg("rax", 3)
        h.set_reg("rbx", 5)
        h.run("sub %rbx, %rax")
        assert h.reg("rax") == (3 - 5) & ((1 << 64) - 1)
        assert h.flag("cf") and h.flag("sf")

    def test_logic_clears_cf_of(self):
        h = Harness()
        h.set_reg("rax", 0xF0)
        h.set_reg("rbx", 0x0F)
        h.run("and %rbx, %rax")
        assert h.reg("rax") == 0
        assert h.flag("zf") and not h.flag("cf") and not h.flag("of")

    def test_xor_zero_idiom_result(self):
        h = Harness()
        h.set_reg("rdx", 0xDEAD)
        h.run("xor %edx, %edx")
        assert h.reg("rdx") == 0
        assert h.flag("zf")

    def test_immediate_sign_extension(self):
        h = Harness()
        h.set_reg("rax", 0)
        h.run("add $-1, %rax")
        assert h.reg("rax") == (1 << 64) - 1

    def test_cmp_sets_flags_only(self):
        h = Harness()
        h.set_reg("rax", 5)
        h.run("cmp $5, %rax")
        assert h.reg("rax") == 5
        assert h.flag("zf")

    def test_test_instruction(self):
        h = Harness()
        h.set_reg("rax", 0b1010)
        h.run("test $2, %rax")
        assert not h.flag("zf")
        h.run("test $5, %rax")
        assert h.flag("zf")

    def test_inc_preserves_cf(self):
        h = Harness()
        h.state.flags["cf"] = True
        h.set_reg("rax", 1)
        h.run("inc %rax")
        assert h.reg("rax") == 2
        assert h.flag("cf")

    def test_neg(self):
        h = Harness()
        h.set_reg("rax", 5)
        h.run("neg %rax")
        assert h.reg("rax") == (1 << 64) - 5
        assert h.flag("cf")

    def test_not_preserves_flags(self):
        h = Harness()
        h.state.flags["zf"] = True
        h.set_reg("rax", 0)
        h.run("not %rax")
        assert h.reg("rax") == (1 << 64) - 1
        assert h.flag("zf")

    def test_bswap(self):
        h = Harness()
        h.set_reg("eax", 0x11223344)
        h.run("bswap %eax")
        assert h.reg("eax") == 0x44332211

    def test_8bit_partial_write(self):
        h = Harness()
        h.set_reg("rax", 0x1100)
        h.set_reg("rbx", 0xFF)
        h.run("add %bl, %al")
        assert h.reg("rax") == 0x11FF


class TestMovFamily:
    def test_mov_imm(self):
        h = Harness()
        h.run("mov $42, %rcx")
        assert h.reg("rcx") == 42

    def test_mov_32_zero_extends(self):
        h = Harness()
        h.set_reg("rax", (1 << 64) - 1)
        h.set_reg("ebx", 7)
        h.run("mov %ebx, %eax")
        assert h.reg("rax") == 7

    def test_movzx(self):
        h = Harness()
        h.set_reg("rax", 0xFFFF_FFFF_FFFF_FFAB)
        h.run("movzx %al, %ecx")
        assert h.reg("rcx") == 0xAB

    def test_movsx(self):
        h = Harness()
        h.set_reg("rax", 0x80)
        h.run("movsx %al, %ecx")
        assert h.reg("ecx") == 0xFFFFFF80

    def test_lea(self):
        h = Harness()
        h.set_reg("rax", 0x1000)
        h.set_reg("rbx", 3)
        h.run("lea 5(%rax, %rbx, 4), %rcx")
        assert h.reg("rcx") == 0x1000 + 12 + 5

    def test_xchg(self):
        h = Harness()
        h.set_reg("rax", 1)
        h.set_reg("rbx", 2)
        h.run("xchg %rax, %rbx")
        assert (h.reg("rax"), h.reg("rbx")) == (2, 1)

    def test_cdq(self):
        h = Harness()
        h.set_reg("eax", 0x80000000)
        h.run("cdq")
        assert h.reg("edx") == 0xFFFFFFFF

    def test_cdqe(self):
        h = Harness()
        h.set_reg("eax", 0xFFFFFFFF)
        h.run("cdqe")
        assert h.reg("rax") == (1 << 64) - 1


class TestShifts:
    def test_shl(self):
        h = Harness()
        h.set_reg("rax", 3)
        h.run("shl $4, %rax")
        assert h.reg("rax") == 48

    def test_shr_carry(self):
        h = Harness()
        h.set_reg("rax", 0b101)
        h.run("shr $1, %rax")
        assert h.reg("rax") == 0b10
        assert h.flag("cf")

    def test_sar_sign(self):
        h = Harness()
        h.set_reg("rax", (1 << 64) - 8)  # -8
        h.run("sar $1, %rax")
        assert h.reg("rax") == (1 << 64) - 4  # -4

    def test_rol_ror_inverse(self):
        h = Harness()
        h.set_reg("rax", 0x123456789ABCDEF0)
        h.run("rol $13, %rax")
        h.run("ror $13, %rax")
        assert h.reg("rax") == 0x123456789ABCDEF0

    def test_shift_count_masked(self):
        h = Harness()
        h.set_reg("eax", 1)
        h.set_reg("cl", 33)  # masked to 1 for 32-bit
        h.run("shl %cl, %eax")
        assert h.reg("eax") == 2

    def test_shld(self):
        h = Harness()
        h.set_reg("rax", 0x1)
        h.set_reg("rbx", 0x8000000000000000)
        h.run("shld $1, %rbx, %rax")
        assert h.reg("rax") == 0b11

    def test_zero_count_is_noop_for_flags(self):
        h = Harness()
        h.state.flags["cf"] = True
        h.set_reg("rax", 4)
        h.set_reg("cl", 0)
        h.run("shr %cl, %rax")
        assert h.reg("rax") == 4
        assert h.flag("cf")


class TestBitScan:
    def test_bsf(self):
        h = Harness()
        h.set_reg("rbx", 0b101000)
        h.run("bsf %rbx, %rax")
        assert h.reg("rax") == 3

    def test_bsr(self):
        h = Harness()
        h.set_reg("rbx", 0b101000)
        h.run("bsr %rbx, %rax")
        assert h.reg("rax") == 5

    def test_tzcnt_zero_input(self):
        h = Harness()
        h.set_reg("rbx", 0)
        h.run("tzcnt %rbx, %rax")
        assert h.reg("rax") == 64

    def test_popcnt(self):
        h = Harness()
        h.set_reg("rbx", 0xFF00FF)
        h.run("popcnt %rbx, %rax")
        assert h.reg("rax") == 16


class TestMulDiv:
    def test_imul_two_operand(self):
        h = Harness()
        h.set_reg("rax", 7)
        h.set_reg("rbx", 6)
        h.run("imul %rbx, %rax")
        assert h.reg("rax") == 42

    def test_imul_three_operand(self):
        h = Harness()
        h.set_reg("rbx", -3 & ((1 << 64) - 1))
        h.run("imul $5, %rbx, %rax")
        assert h.reg("rax") == (-15) & ((1 << 64) - 1)

    def test_mul_wide(self):
        h = Harness()
        h.set_reg("rax", 1 << 63)
        h.set_reg("rbx", 4)
        h.run("mul %rbx")
        assert h.reg("rdx") == 2
        assert h.reg("rax") == 0
        assert h.flag("cf")

    def test_div(self):
        h = Harness()
        h.set_reg("edx", 0)
        h.set_reg("eax", 100)
        h.set_reg("ecx", 7)
        h.run("div %ecx")
        assert h.reg("eax") == 14
        assert h.reg("edx") == 2

    def test_idiv_negative(self):
        h = Harness()
        h.set_reg("rax", (-100) & ((1 << 64) - 1))
        h.run("cqo")
        h.set_reg("rcx", 7)
        h.run("idiv %rcx")
        assert h.reg("rax") == (-14) & ((1 << 64) - 1)

    def test_div_by_zero_faults(self):
        h = Harness()
        h.set_reg("ecx", 0)
        with pytest.raises(ArithmeticFault):
            h.run("div %ecx")

    def test_div_overflow_faults(self):
        h = Harness()
        h.set_reg("edx", 10)  # dividend >> 32 bits of quotient
        h.set_reg("eax", 0)
        h.set_reg("ecx", 1)
        with pytest.raises(ArithmeticFault):
            h.run("div %ecx")

    def test_div_records_latency_class(self):
        h = Harness()
        h.set_reg("edx", 0)
        h.set_reg("ecx", 3)
        trace = h.run("div %ecx")
        assert trace.events[0].div_class == (32, True)

    def test_div64_slow_class(self):
        h = Harness()
        h.set_reg("rdx", 1)
        h.set_reg("rax", 0)
        h.set_reg("rcx", 3)
        trace = h.run("div %rcx")
        assert trace.events[0].div_class == (64, False)


class TestConditional:
    def test_cmov_taken(self):
        h = Harness()
        h.set_reg("rax", 1)
        h.set_reg("rbx", 99)
        h.run("cmp $1, %rax\ncmove %rbx, %rcx")
        assert h.reg("rcx") == 99

    def test_cmov_not_taken(self):
        h = Harness()
        h.set_reg("rax", 1)
        h.set_reg("rbx", 99)
        h.set_reg("rcx", 5)
        h.run("cmp $2, %rax\ncmove %rbx, %rcx")
        assert h.reg("rcx") == 5

    def test_setcc(self):
        h = Harness()
        h.set_reg("rax", 3)
        h.run("cmp $4, %rax\nsetb %cl")
        assert h.reg("cl") == 1
        h.run("cmp $2, %rax\nsetb %cl")
        assert h.reg("cl") == 0

    @pytest.mark.parametrize("cc,a,b,taken", [
        ("l", 1, 2, True), ("l", 2, 1, False),
        ("g", 2, 1, True), ("ge", 2, 2, True),
        ("a", 2, 1, True), ("b", 1, 2, True),
        ("ne", 1, 2, True), ("e", 2, 2, True),
    ])
    def test_condition_codes(self, cc, a, b, taken):
        h = Harness()
        h.set_reg("rax", a)
        h.run(f"cmp ${b}, %rax\nset{cc} %dl")
        assert h.reg("dl") == int(taken)


class TestUnsupported:
    @pytest.mark.parametrize("mnem", ["syscall", "cpuid", "rdtsc",
                                      "mfence", "rep_movsb"])
    def test_unsupported_raises(self, mnem):
        h = Harness()
        with pytest.raises(UnsupportedInstructionError):
            h.run(mnem)
