"""Functional semantics: SSE/AVX vector and FP instructions."""

import struct

import pytest

from tests.runtime.helpers import Harness


def f32(value: float) -> int:
    return struct.unpack("<I", struct.pack("<f", value))[0]


def as_f32(bits: int) -> float:
    return struct.unpack("<f", struct.pack("<I", bits & 0xFFFFFFFF))[0]


def f64(value: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def pack_f32(*values: float) -> int:
    out = 0
    for i, v in enumerate(values):
        out |= f32(v) << (32 * i)
    return out


class TestVectorLogic:
    def test_pxor_zero_idiom(self):
        h = Harness()
        h.set_reg("xmm1", (1 << 128) - 1)
        h.run("pxor %xmm1, %xmm1")
        assert h.reg("xmm1") == 0

    def test_pand(self):
        h = Harness()
        h.set_reg("xmm0", 0xFF00)
        h.set_reg("xmm1", 0x0FF0)
        h.run("pand %xmm1, %xmm0")
        assert h.reg("xmm0") == 0x0F00

    def test_vex_three_operand_nondestructive(self):
        h = Harness()
        h.set_reg("xmm1", 0b1100)
        h.set_reg("xmm2", 0b1010)
        h.run("vandps %xmm2, %xmm1, %xmm0")
        assert h.reg("xmm0") == 0b1000
        assert h.reg("xmm1") == 0b1100  # sources untouched

    def test_vex_write_zeroes_upper_lane(self):
        h = Harness()
        h.set_reg("ymm0", 1 << 200)
        h.run("vxorps %xmm0, %xmm0, %xmm0")
        assert h.reg("ymm0") == 0

    def test_ptest(self):
        h = Harness()
        h.set_reg("xmm0", 0)
        h.set_reg("xmm1", 0xFF)
        h.run("ptest %xmm1, %xmm0")
        assert h.flag("zf")


class TestVectorInteger:
    def test_paddd_lanewise(self):
        h = Harness()
        h.set_reg("xmm0", (3 << 32) | 1)
        h.set_reg("xmm1", (4 << 32) | 2)
        h.run("paddd %xmm1, %xmm0")
        assert h.reg("xmm0") & 0xFFFFFFFF == 3
        assert (h.reg("xmm0") >> 32) & 0xFFFFFFFF == 7

    def test_paddd_wraps_per_lane(self):
        h = Harness()
        h.set_reg("xmm0", 0xFFFFFFFF)
        h.set_reg("xmm1", 1)
        h.run("paddd %xmm1, %xmm0")
        assert h.reg("xmm0") & ((1 << 64) - 1) == 0  # no carry across

    def test_pcmpeqd(self):
        h = Harness()
        h.set_reg("xmm0", (7 << 32) | 5)
        h.set_reg("xmm1", (7 << 32) | 6)
        h.run("pcmpeqd %xmm1, %xmm0")
        assert h.reg("xmm0") & 0xFFFFFFFF == 0
        assert (h.reg("xmm0") >> 32) & 0xFFFFFFFF == 0xFFFFFFFF

    def test_pslld(self):
        h = Harness()
        h.set_reg("xmm0", (1 << 32) | 1)
        h.run("pslld $4, %xmm0")
        assert h.reg("xmm0") & 0xFFFFFFFF == 16

    def test_pmaxsd_signed(self):
        h = Harness()
        h.set_reg("xmm0", 0xFFFFFFFF)  # -1 in lane 0
        h.set_reg("xmm1", 3)
        h.run("pmaxsd %xmm1, %xmm0")
        assert h.reg("xmm0") & 0xFFFFFFFF == 3


class TestFloatingPoint:
    def test_addss_scalar_lane(self):
        h = Harness()
        h.set_reg("xmm0", pack_f32(1.5, 9.0))
        h.set_reg("xmm1", pack_f32(2.25, 7.0))
        h.run("addss %xmm1, %xmm0")
        assert as_f32(h.reg("xmm0")) == 3.75
        # upper lane preserved by scalar SSE op
        assert as_f32(h.reg("xmm0") >> 32) == 9.0

    def test_addps_packed(self):
        h = Harness()
        h.set_reg("xmm0", pack_f32(1.0, 2.0, 3.0, 4.0))
        h.set_reg("xmm1", pack_f32(10.0, 20.0, 30.0, 40.0))
        h.run("addps %xmm1, %xmm0")
        assert as_f32(h.reg("xmm0")) == 11.0
        assert as_f32(h.reg("xmm0") >> 96) == 44.0

    def test_mulsd(self):
        h = Harness()
        h.set_reg("xmm0", f64(3.0))
        h.set_reg("xmm1", f64(4.0))
        h.run("mulsd %xmm1, %xmm0")
        assert struct.unpack(
            "<d", (h.reg("xmm0") & ((1 << 64) - 1)).to_bytes(8, "little")
        )[0] == 12.0

    def test_divss_by_zero_gives_inf(self):
        h = Harness()
        h.set_reg("xmm0", f32(1.0))
        h.set_reg("xmm1", f32(0.0))
        h.run("divss %xmm1, %xmm0")
        assert as_f32(h.reg("xmm0")) == float("inf")

    def test_sqrtss(self):
        h = Harness()
        h.set_reg("xmm1", f32(9.0))
        h.run("sqrtss %xmm1, %xmm0")
        assert as_f32(h.reg("xmm0")) == 3.0

    def test_minps_maxps(self):
        h = Harness()
        h.set_reg("xmm0", pack_f32(1.0, 5.0))
        h.set_reg("xmm1", pack_f32(2.0, 3.0))
        h.run("minps %xmm1, %xmm0")
        assert as_f32(h.reg("xmm0")) == 1.0
        h.set_reg("xmm0", pack_f32(1.0, 5.0))
        h.run("maxps %xmm1, %xmm0")
        assert as_f32(h.reg("xmm0")) == 2.0

    def test_comiss_flags(self):
        h = Harness()
        h.set_reg("xmm0", f32(1.0))
        h.set_reg("xmm1", f32(2.0))
        h.run("ucomiss %xmm1, %xmm0")
        assert h.flag("cf") and not h.flag("zf")


class TestSubnormals:
    def test_assist_recorded_without_ftz(self):
        h = Harness(ftz=False)
        h.set_reg("xmm0", f32(1e-30))
        h.set_reg("xmm1", f32(1e-10))
        trace = h.run("mulss %xmm1, %xmm0")
        assert trace.events[0].subnormal
        assert as_f32(h.reg("xmm0")) != 0.0  # gradual underflow

    def test_ftz_flushes_and_suppresses_assist(self):
        h = Harness(ftz=True)
        h.set_reg("xmm0", f32(1e-30))
        h.set_reg("xmm1", f32(1e-10))
        trace = h.run("mulss %xmm1, %xmm0")
        assert not trace.events[0].subnormal
        assert as_f32(h.reg("xmm0")) == 0.0

    def test_normal_inputs_no_assist(self):
        h = Harness(ftz=False)
        h.set_reg("xmm0", f32(1.0))
        h.set_reg("xmm1", f32(2.0))
        trace = h.run("mulss %xmm1, %xmm0")
        assert not trace.events[0].subnormal


class TestConvertsAndShuffles:
    def test_cvtsi2ss(self):
        h = Harness()
        h.set_reg("eax", 42)
        h.run("cvtsi2ss %eax, %xmm0")
        assert as_f32(h.reg("xmm0")) == 42.0

    def test_cvttss2si_truncates(self):
        h = Harness()
        h.set_reg("xmm0", f32(3.9))
        h.run("cvttss2si %xmm0, %eax")
        assert h.reg("eax") == 3

    def test_cvtdq2ps(self):
        h = Harness()
        h.set_reg("xmm1", (5 << 32) | 2)
        h.run("cvtdq2ps %xmm1, %xmm0")
        assert as_f32(h.reg("xmm0")) == 2.0
        assert as_f32(h.reg("xmm0") >> 32) == 5.0

    def test_pshufd_broadcast_lane(self):
        h = Harness()
        h.set_reg("xmm1", pack_f32(1.0, 2.0, 3.0, 4.0))
        h.run("pshufd $0, %xmm1, %xmm0")
        for lane in range(4):
            assert as_f32(h.reg("xmm0") >> (32 * lane)) == 1.0

    def test_shufps(self):
        h = Harness()
        h.set_reg("xmm0", pack_f32(1.0, 2.0, 3.0, 4.0))
        h.set_reg("xmm1", pack_f32(5.0, 6.0, 7.0, 8.0))
        h.run("shufps $0b01000100, %xmm1, %xmm0")
        assert as_f32(h.reg("xmm0")) == 1.0
        assert as_f32(h.reg("xmm0") >> 64) == 5.0

    def test_unpcklps(self):
        h = Harness()
        h.set_reg("xmm0", pack_f32(1.0, 2.0, 3.0, 4.0))
        h.set_reg("xmm1", pack_f32(5.0, 6.0, 7.0, 8.0))
        h.run("unpcklps %xmm1, %xmm0")
        assert [as_f32(h.reg("xmm0") >> (32 * i)) for i in range(4)] \
            == [1.0, 5.0, 2.0, 6.0]

    def test_vbroadcastss(self):
        h = Harness()
        h.set_reg("rdi", 0x5000)
        h.map(0x5000)
        h.memory.write_int(0x5000, 4, f32(2.5))
        h.run("vbroadcastss (%rdi), %ymm0")
        for lane in range(8):
            assert as_f32(h.reg("ymm0") >> (32 * lane)) == 2.5

    def test_vinsert_vextract_roundtrip(self):
        h = Harness()
        h.set_reg("xmm1", 0xAAAA)
        h.set_reg("ymm2", 0)
        h.run("vinsertf128 $1, %xmm1, %ymm2, %ymm0")
        assert h.reg("ymm0") >> 128 == 0xAAAA
        h.run("vextractf128 $1, %ymm0, %xmm3")
        assert h.reg("xmm3") == 0xAAAA

    def test_movmskps(self):
        h = Harness()
        h.set_reg("xmm1", pack_f32(-1.0, 2.0, -3.0, 4.0))
        h.run("movmskps %xmm1, %eax")
        assert h.reg("eax") == 0b0101


class TestFma:
    def test_vfmadd231(self):
        h = Harness()
        h.set_reg("xmm0", pack_f32(10.0))   # dst = addend for 231
        h.set_reg("xmm1", pack_f32(2.0))
        h.set_reg("xmm2", pack_f32(3.0))
        h.run("vfmadd231ps %xmm2, %xmm1, %xmm0")
        assert as_f32(h.reg("xmm0")) == 16.0

    def test_vfmadd213(self):
        h = Harness()
        h.set_reg("xmm0", pack_f32(2.0))
        h.set_reg("xmm1", pack_f32(3.0))
        h.set_reg("xmm2", pack_f32(10.0))
        h.run("vfmadd213ps %xmm2, %xmm1, %xmm0")
        assert as_f32(h.reg("xmm0")) == 16.0

    def test_vfnmadd(self):
        h = Harness()
        h.set_reg("xmm0", pack_f32(10.0))
        h.set_reg("xmm1", pack_f32(2.0))
        h.set_reg("xmm2", pack_f32(3.0))
        h.run("vfnmadd231ps %xmm2, %xmm1, %xmm0")
        assert as_f32(h.reg("xmm0")) == 4.0

    def test_movss_load_zero_extends(self):
        h = Harness()
        h.set_reg("rdi", 0x5000)
        h.map(0x5000)
        h.memory.write_int(0x5000, 4, f32(1.5))
        h.set_reg("xmm0", (1 << 127))
        h.run("movss (%rdi), %xmm0")
        assert h.reg("xmm0") == f32(1.5)

    def test_movss_reg_merges(self):
        h = Harness()
        h.set_reg("xmm0", pack_f32(1.0, 2.0))
        h.set_reg("xmm1", pack_f32(9.0, 8.0))
        h.run("movss %xmm1, %xmm0")
        assert as_f32(h.reg("xmm0")) == 9.0
        assert as_f32(h.reg("xmm0") >> 32) == 2.0
