"""Pre-bound flag thunks vs the interpreted flag setters.

The block-plan compiler replaces ``Executor._set_add_flags`` /
``_set_sub_flags`` / ``_set_logic_flags`` and ``evaluate_condition``
with pre-bound thunks writing straight into the flattened flag array.
These tests hold the thunks to bit-for-bit equivalence: exhaustively
at width 1 (every ``a``, ``b`` byte pair with both carry values, every
condition code against every flag combination) and on boundary values
at the wider widths.

The batch-lane layer (``repro.runtime.lanes``) replicates the same
thunks element-wise over ``(n, 6)`` bool flag matrices; the vectorized
section below holds each replica to the scalar thunk lane-by-lane —
heterogeneous inputs across lanes of *one* matrix step, so a
vector-width bug cannot hide behind uniform operands.
"""

import pytest

from repro.runtime import lanes, plan
from repro.runtime.executor import Executor, evaluate_condition
from repro.runtime.memory import VirtualMemory
from repro.runtime.state import MachineState

try:
    import numpy as np
except ImportError:  # pragma: no cover - environment-dependent
    np = None

needs_numpy = pytest.mark.skipif(np is None,
                                 reason="numpy not installed")

#: Flag-matrix column layout shared with ``lanes``: name -> column.
FLAG_COLUMNS = {"cf": 0, "pf": 1, "af": 2, "zf": 3, "sf": 4, "of": 5}


def _executor() -> Executor:
    state = MachineState()
    state.initialize()
    return Executor(state, VirtualMemory())


def _boundary_values(width: int):
    """Corner cases for one operand width (plus over-range inputs)."""
    bits = width * 8
    top = 1 << bits
    half = top >> 1
    values = {0, 1, 2, 0xF, 0x10, 0x7F, 0x80, 0xFF,
              half - 1, half, half + 1, top - 2, top - 1,
              top, top + 1, top + half}  # over-range: masking parity
    return sorted(values)


# ---------------------------------------------------------------------------
# Arithmetic flag thunks
# ---------------------------------------------------------------------------

def _compare(ex: Executor, thunk, reference, a: int, b: int,
             carry: int, width: int) -> None:
    compiled_result = thunk(a, b, carry)
    compiled_flags = dict(ex.state.flags)
    interpreted_result = reference(a, b, carry, width)
    interpreted_flags = dict(ex.state.flags)
    assert compiled_result == interpreted_result, (a, b, carry, width)
    assert compiled_flags == interpreted_flags, (a, b, carry, width)


@pytest.mark.parametrize("kind", ["add", "sub"])
def test_arith_flags_exhaustive_width1(kind):
    ex = _executor()
    if kind == "add":
        thunk = plan._add_flags_binder(1)(ex)
        reference = ex._set_add_flags
    else:
        thunk = plan._sub_flags_binder(1)(ex)
        reference = ex._set_sub_flags
    for a in range(256):
        for b in range(256):
            for carry in (0, 1):
                _compare(ex, thunk, reference, a, b, carry, 1)


@pytest.mark.parametrize("kind", ["add", "sub"])
@pytest.mark.parametrize("width", [2, 4, 8])
def test_arith_flags_boundaries(kind, width):
    ex = _executor()
    if kind == "add":
        thunk = plan._add_flags_binder(width)(ex)
        reference = ex._set_add_flags
    else:
        thunk = plan._sub_flags_binder(width)(ex)
        reference = ex._set_sub_flags
    values = _boundary_values(width)
    for a in values:
        for b in values:
            for carry in (0, 1):
                _compare(ex, thunk, reference, a, b, carry, width)


def test_logic_flags_exhaustive_width1():
    ex = _executor()
    thunk = plan._logic_flags_binder(1)(ex)
    for result in range(512):  # over-range half checks the masking
        compiled = thunk(result)
        compiled_flags = dict(ex.state.flags)
        ex._set_logic_flags(result, 1)
        interpreted_flags = dict(ex.state.flags)
        assert compiled == result & 0xFF
        assert compiled_flags == interpreted_flags, result


@pytest.mark.parametrize("width", [2, 4, 8])
def test_logic_flags_boundaries(width):
    ex = _executor()
    thunk = plan._logic_flags_binder(width)(ex)
    for result in _boundary_values(width):
        compiled = thunk(result)
        compiled_flags = dict(ex.state.flags)
        ex._set_logic_flags(result, width)
        interpreted_flags = dict(ex.state.flags)
        assert compiled == result & ((1 << (width * 8)) - 1)
        assert compiled_flags == interpreted_flags, result


# ---------------------------------------------------------------------------
# Condition codes
# ---------------------------------------------------------------------------

def test_cc_tables_cover_the_same_codes():
    interpreted = {"e", "z", "ne", "nz", "l", "ge", "le", "g", "b",
                   "c", "ae", "nc", "be", "a", "s", "ns", "o", "no",
                   "p", "np"}
    assert set(plan._CC_COMPILED) == interpreted
    for cc in interpreted:  # every code actually evaluates
        assert evaluate_condition(cc, {"cf": False, "zf": False,
                                       "sf": False, "of": False,
                                       "pf": False}) in (True, False)


@pytest.mark.parametrize("cc", sorted(plan._CC_COMPILED))
def test_condition_codes_exhaustive(cc):
    """All 2^5 flag combinations for every condition code."""
    compiled = plan._CC_COMPILED[cc]
    for bits in range(32):
        cf, pf, zf, sf, of = (bool(bits & 1), bool(bits & 2),
                              bool(bits & 4), bool(bits & 8),
                              bool(bits & 16))
        flags = {"cf": cf, "pf": pf, "af": False, "zf": zf,
                 "sf": sf, "of": of}
        f = [cf, pf, False, zf, sf, of]
        assert bool(compiled(f)) == evaluate_condition(cc, flags), \
            (cc, flags)


@pytest.mark.parametrize("cc", sorted(plan._CC_COMPILED))
def test_condition_codes_nonbool_flags(cc):
    """Raw ints poked through the flag views keep their truthiness."""
    for raw in (0, 1, 2):
        flags = {"cf": raw, "pf": raw, "af": 0, "zf": raw,
                 "sf": raw, "of": raw}
        f = [raw, raw, 0, raw, raw, raw]
        assert bool(plan._CC_COMPILED[cc](f)) \
            == bool(evaluate_condition(cc, flags)), (cc, raw)


# ---------------------------------------------------------------------------
# Vectorized flag thunks (batch lanes) vs the scalar thunks
# ---------------------------------------------------------------------------

def _scalar_flag_rows(ex: Executor, thunk, cases):
    """Scalar results and flag rows for (a, b, carry) cases."""
    results, rows = [], []
    for a, b, carry in cases:
        results.append(thunk(a, b, carry))
        flags = dict(ex.state.flags)
        rows.append([flags[name] for name in FLAG_COLUMNS])
    return results, rows


def _vector_run(vec_thunk, cases):
    """One matrix step over all cases at once — per-lane operands."""
    a = np.array([c[0] for c in cases], dtype=np.uint64)
    b = np.array([c[1] for c in cases], dtype=np.uint64)
    carry = np.array([c[2] for c in cases], dtype=np.uint64)
    F = np.zeros((len(cases), 6), dtype=bool)
    result = vec_thunk(F, a, b, carry)
    return [int(x) for x in result], [[bool(x) for x in row]
                                      for row in F]


@needs_numpy
@pytest.mark.parametrize("kind", ["add", "sub"])
def test_vec_arith_flags_exhaustive_width1(kind):
    """Every byte pair with both carries, in a single matrix step."""
    ex = _executor()
    if kind == "add":
        scalar = plan._add_flags_binder(1)(ex)
        vector = lanes.vec_add_flags(1)
    else:
        scalar = plan._sub_flags_binder(1)(ex)
        vector = lanes.vec_sub_flags(1)
    cases = [(a, b, carry) for a in range(256) for b in range(256)
             for carry in (0, 1)]
    want_results, want_rows = _scalar_flag_rows(ex, scalar, cases)
    got_results, got_rows = _vector_run(vector, cases)
    assert got_results == want_results
    assert got_rows == want_rows


@needs_numpy
@pytest.mark.parametrize("kind", ["add", "sub"])
@pytest.mark.parametrize("width", [2, 4, 8])
def test_vec_arith_flags_boundaries(kind, width):
    """Boundary operands at every width, heterogeneous per lane."""
    ex = _executor()
    if kind == "add":
        scalar = plan._add_flags_binder(width)(ex)
        vector = lanes.vec_add_flags(width)
    else:
        scalar = plan._sub_flags_binder(width)(ex)
        vector = lanes.vec_sub_flags(width)
    # The vectorized thunks hold uint64 matrices: over-range probing
    # stops at 2**64-1 instead of the scalar thunks' unbounded ints.
    values = [v for v in _boundary_values(width) if v < 1 << 64]
    cases = [(a, b, carry) for a in values for b in values
             for carry in (0, 1)]
    want_results, want_rows = _scalar_flag_rows(ex, scalar, cases)
    got_results, got_rows = _vector_run(vector, cases)
    assert got_results == want_results
    assert got_rows == want_rows


@needs_numpy
@pytest.mark.parametrize("width", [1, 2, 4, 8])
def test_vec_logic_flags(width):
    ex = _executor()
    scalar = plan._logic_flags_binder(width)(ex)
    vector = lanes.vec_logic_flags(width)
    values = [v for v in _boundary_values(width) if v < 1 << 64]
    if width == 1:
        values = list(range(512))  # exhaustive + over-range masking
    want_results, want_rows = [], []
    for value in values:
        want_results.append(scalar(value))
        flags = dict(ex.state.flags)
        want_rows.append([flags[name] for name in FLAG_COLUMNS])
    F = np.zeros((len(values), 6), dtype=bool)
    result = vector(F, np.array(values, dtype=np.uint64))
    assert [int(x) for x in result] == want_results
    assert [[bool(x) for x in row] for row in F] == want_rows


@needs_numpy
def test_vec_cc_covers_the_compiled_codes():
    assert set(lanes.VEC_CC) == set(plan._CC_COMPILED)


@needs_numpy
@pytest.mark.parametrize("cc", sorted(plan._CC_COMPILED))
def test_vec_condition_codes_exhaustive(cc):
    """All 2^5 flag combinations as 32 lanes of one matrix."""
    F = np.zeros((32, 6), dtype=bool)
    expected = []
    for bits in range(32):
        cf, pf, zf, sf, of = (bool(bits & 1), bool(bits & 2),
                              bool(bits & 4), bool(bits & 8),
                              bool(bits & 16))
        F[bits] = [cf, pf, False, zf, sf, of]
        expected.append(evaluate_condition(
            cc, {"cf": cf, "pf": pf, "af": False, "zf": zf,
                 "sf": sf, "of": of}))
    column = lanes.VEC_CC[cc](F)
    assert [bool(x) for x in column] == expected
    # The evaluator hands back a fresh column, never a live view:
    # mutating F afterwards must not rewrite an earlier verdict.
    before = [bool(x) for x in column]
    F[:] = ~F
    assert [bool(x) for x in column] == before
