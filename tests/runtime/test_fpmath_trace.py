"""FP lane helpers and execution-trace structures."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.runtime import fpmath
from repro.runtime.trace import ExecutionTrace, InstrEvent, MemAccess


class TestLanes:
    def test_split_and_join_roundtrip(self):
        value = 0x11223344_55667788_99AABBCC_DDEEFF00
        lanes = fpmath.lanes_of(value, 128, 32)
        assert len(lanes) == 4
        assert fpmath.lanes_to_int(lanes, 32) == value

    def test_lane_order_little_endian(self):
        lanes = fpmath.lanes_of(0x00000002_00000001, 64, 32)
        assert lanes == [1, 2]

    @given(st.integers(min_value=0, max_value=(1 << 256) - 1),
           st.sampled_from([8, 16, 32, 64]))
    def test_roundtrip_property(self, value, lane_bits):
        lanes = fpmath.lanes_of(value, 256, lane_bits)
        assert fpmath.lanes_to_int(lanes, lane_bits) == value


class TestFloatBits:
    @pytest.mark.parametrize("value", [0.0, 1.0, -2.5, 1e30, 1e-30])
    @pytest.mark.parametrize("bits", [32, 64])
    def test_roundtrip(self, value, bits):
        assert fpmath.bits_to_float(
            fpmath.float_to_bits(value, bits), bits) == \
            pytest.approx(value, rel=1e-6)

    def test_overflow_becomes_infinity(self):
        bits = fpmath.float_to_bits(1e300, 32)
        assert math.isinf(fpmath.bits_to_float(bits, 32))

    def test_subnormal_detection(self):
        assert fpmath.is_subnormal(1e-40, 32)
        assert not fpmath.is_subnormal(1e-40, 64)
        assert fpmath.is_subnormal(1e-310, 64)
        assert not fpmath.is_subnormal(0.0, 32)
        assert not fpmath.is_subnormal(float("inf"), 32)
        assert not fpmath.is_subnormal(float("nan"), 32)

    def test_flush(self):
        assert fpmath.flush_if_subnormal(1e-40, 32, ftz=True) == 0.0
        assert fpmath.flush_if_subnormal(1e-40, 32, ftz=False) == 1e-40
        assert fpmath.flush_if_subnormal(-1e-40, 32, ftz=True) == 0.0


class TestLanewiseFp:
    def test_no_assist_on_normal_values(self):
        a = [fpmath.float_to_bits(2.0, 32)]
        b = [fpmath.float_to_bits(3.0, 32)]
        out, assist = fpmath.lanewise_fp([a, b], 32,
                                         lambda x, y: x * y, False)
        assert not assist
        assert fpmath.bits_to_float(out[0], 32) == 6.0

    def test_assist_on_subnormal_result(self):
        a = [fpmath.float_to_bits(1e-30, 32)]
        b = [fpmath.float_to_bits(1e-10, 32)]
        out, assist = fpmath.lanewise_fp([a, b], 32,
                                         lambda x, y: x * y, False)
        assert assist

    def test_no_assist_when_underflow_rounds_to_zero(self):
        a = [fpmath.float_to_bits(1e-30, 32)]
        out, assist = fpmath.lanewise_fp([a, a], 32,
                                         lambda x, y: x * y, False)
        assert not assist  # 1e-60 rounds straight to 0 in f32
        assert fpmath.bits_to_float(out[0], 32) == 0.0

    def test_ftz_flushes_result(self):
        a = [fpmath.float_to_bits(1e-30, 32)]
        b = [fpmath.float_to_bits(1e-10, 32)]
        out, assist = fpmath.lanewise_fp([a, b], 32,
                                         lambda x, y: x * y, True)
        assert not assist
        assert fpmath.bits_to_float(out[0], 32) == 0.0


class TestTrace:
    def test_cross_line_detection(self):
        assert MemAccess(60, 8, False).crosses_line()
        assert not MemAccess(56, 8, False).crosses_line()
        assert not MemAccess(63, 1, False).crosses_line()
        assert MemAccess(63, 2, False).crosses_line()

    def test_counts(self):
        trace = ExecutionTrace(block_len=2, unroll=1)
        e1 = InstrEvent(0, 0, accesses=[MemAccess(60, 8, False)])
        e2 = InstrEvent(1, 1, subnormal=True)
        trace.append(e1)
        trace.append(e2)
        assert len(trace) == 2
        assert trace.misaligned_count() == 1
        assert trace.subnormal_count == 1

    def test_address_signature(self):
        t1 = ExecutionTrace(1, 1)
        t1.append(InstrEvent(0, 0, accesses=[MemAccess(8, 4, True)]))
        t2 = ExecutionTrace(1, 1)
        t2.append(InstrEvent(0, 0, accesses=[MemAccess(8, 4, True)]))
        assert t1.address_signature() == t2.address_signature()
        t3 = ExecutionTrace(1, 1)
        t3.append(InstrEvent(0, 0, accesses=[MemAccess(8, 4, False)]))
        assert t1.address_signature() != t3.address_signature()
