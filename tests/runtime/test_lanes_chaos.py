"""Chaos points vs batch lanes: faults evacuate, bytes never change.

Two fault injectors intersect the lane layer:

* ``block_poison`` — a poisoned block must never enter a lane (it
  would raise mid-lockstep and take certified neighbours down with
  it).  The pre-filter leaves exactly the poisoned member to the
  scalar path, which quarantines it as usual; the rest of the family
  still rides the lane.
* the step budget — a lockstep run that exceeds the watchdog budget
  abandons certification (``LaneGiveUp``) and sends the whole lane
  scalar, where the same watchdog applies.

Either way the observable bytes must match a lanes-off run under the
identical chaos policy.  (The SIGKILL -> ``--resume`` leg of the
matrix lives in ``tests/resilience/test_kill_resume.py``, which runs
a lane-shaped corpus with ``REPRO_NO_LANES=0``.)
"""

import pytest

from repro.isa.parser import parse_block
from repro.profiler.harness import BasicBlockProfiler
from repro.profiler.result import FailureReason
from repro.resilience import chaos
from repro.resilience.chaos import ChaosPolicy
from repro.resilience.policy import forced_step_budget
from repro.runtime import lanes
from repro.runtime.state import INIT_CONSTANT
from repro.uarch.machine import Machine

pytestmark = pytest.mark.skipif(not lanes.available(),
                                reason="numpy not installed")

#: One lane family, six members, all mappable at the init constant.
FAMILY = ["movq (%%rax), %%rbx\naddq $0x%x, %%rbx\n"
          "movq %%rbx, 8(%%rax)" % (0x100 + 16 * k) for k in range(6)]


def _fingerprint(result):
    return (result.block_text, result.ok,
            None if result.failure is None else result.failure.value,
            result.throughput,
            tuple((m.unroll, m.cycles, m.clean_runs, m.total_runs)
                  for m in result.measurements),
            result.pages_mapped, result.num_faults, result.detail)


def _poison_policy(texts, want=1):
    """A seeded policy whose ``block_poison`` hits exactly ``want``
    of ``texts`` (the hash is deterministic, so scan seeds)."""
    for seed in range(1000):
        policy = ChaosPolicy(seed=seed,
                             rates={"block_poison": 1.0 / len(texts)})
        fired = [t for t in texts
                 if policy.should_fire("block_poison", t)]
        if len(fired) == want:
            return policy, fired
    raise AssertionError("no seed poisons exactly "
                         f"{want} of {len(texts)} blocks")


def _profile(policy, lanes_on):
    with chaos.forced(policy), lanes.forced(lanes_on):
        profiler = BasicBlockProfiler(Machine("haswell", seed=0))
        results = profiler.profile_many(FAMILY)
        marked = {r.block_text for r in results
                  if r.extra.get("lanes_vectorized")}
    return results, marked


def test_poison_evacuates_only_the_poisoned_member():
    texts = [parse_block(t).text() for t in FAMILY]
    policy, fired = _poison_policy(texts, want=1)
    results, marked = _profile(policy, lanes_on=True)
    by_text = {r.block_text: r for r in results}
    poisoned = by_text[fired[0]]
    assert poisoned.failure is FailureReason.QUARANTINED
    assert poisoned.block_text not in marked
    # The other five members still rode the lane.
    survivors = set(texts) - {fired[0]}
    assert marked == survivors
    assert all(by_text[t].ok for t in survivors)


def test_poison_bytes_identical_lanes_on_off():
    texts = [parse_block(t).text() for t in FAMILY]
    policy, _ = _poison_policy(texts, want=1)
    on, marked_on = _profile(policy, lanes_on=True)
    off, marked_off = _profile(policy, lanes_on=False)
    assert [_fingerprint(r) for r in on] \
        == [_fingerprint(r) for r in off]
    assert marked_on and not marked_off


def test_step_budget_trips_the_certificate_run():
    blocks = [parse_block(t) for t in FAMILY]
    program = lanes.program_for(blocks, [b.text() for b in blocks])
    with pytest.raises(lanes.LaneGiveUp):
        lanes.certify(program, unroll=16, max_faults=32,
                      init_constant=INIT_CONSTANT, budget=1)
    # A sane budget certifies the very same lane.
    outcome = lanes.certify(program, unroll=16, max_faults=32,
                            init_constant=INIT_CONSTANT)
    assert all(outcome.survivors)


def test_step_budget_bytes_identical_lanes_on_off():
    """With a one-step watchdog the lane gives up and every member is
    quarantined by the scalar watchdog — in both modes, identically."""
    def run(on):
        with forced_step_budget(1), lanes.forced(on):
            profiler = BasicBlockProfiler(Machine("haswell", seed=0))
            results = profiler.profile_many(FAMILY)
            marked = [r for r in results
                      if r.extra.get("lanes_vectorized")]
        return results, marked

    on, marked_on = run(True)
    off, marked_off = run(False)
    assert [_fingerprint(r) for r in on] \
        == [_fingerprint(r) for r in off]
    assert not marked_on and not marked_off
    assert all(r.failure is FailureReason.QUARANTINED for r in on)
