"""Property-based tests for batch-lane grouping and evacuation.

Three algebraic properties the lane layer's byte-identity argument
leans on:

* **grouping is a pure function of fingerprints** — permuting the
  input corpus never changes the partition (only member order, which
  stays first-appearance), grouping twice gives identical output, and
  no step involves ``hash()`` (fingerprints and group keys survive
  ``PYTHONHASHSEED`` changes and fresh interpreters);
* **evacuation is conservation** — every lane member is either a
  survivor or evacuated, never both, never neither, and never
  duplicated: address divergence evacuates exactly the rows whose
  address differs from the representative's;
* **width 1 degenerates to scalar** — a one-wide lane cannot
  amortize anything, so ``REPRO_LANE_WIDTH=1`` must disable batching
  entirely, and the row<->state bridge is an exact round trip.

Uses hypothesis when available; otherwise a seeded random fallback
walks the same properties over a fixed sample of cases.
"""

import os
import random
import subprocess
import sys

import pytest

from repro.isa.parser import parse_block
from repro.isa.registers import FLAG_NAMES, GPR_BASES, GPR_INDEX
from repro.profiler.harness import BasicBlockProfiler
from repro.profiler.lanebatch import batching_active, form_groups
from repro.runtime import lanes
from repro.runtime.state import INIT_CONSTANT, MachineState
from repro.uarch.machine import Machine

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - environment-dependent
    HAVE_HYPOTHESIS = False

needs_numpy = pytest.mark.skipif(not lanes.available(),
                                 reason="numpy not installed")

#: Mixed pool: three lane-eligible families (two members each, same
#: fingerprint within a family) plus lane-ineligible blocks (vector
#: FP, unvectorized div) whose fingerprint is None.
BLOCK_POOL = [parse_block(text) for text in (
    "movq (%rax), %rbx\naddq $0x100, %rbx\nmovq %rbx, 8(%rax)",
    "movq (%rax), %rbx\naddq $0x110, %rbx\nmovq %rbx, 8(%rax)",
    "shlq $5, %rbx\nxorq %rbx, %rcx",
    "shlq $6, %rbx\nxorq %rbx, %rcx",
    "cmpq $0x200, %rsi\ncmovne %rdi, %r8\nsete %al",
    "cmpq $0x210, %rsi\ncmovne %rdi, %r8\nsete %al",
    "mulps %xmm1, %xmm2\naddps %xmm2, %xmm3",
    "xor %edx, %edx\ndiv %ecx",
)]


def pool_blocks(choices):
    return [BLOCK_POOL[c % len(BLOCK_POOL)] for c in choices]


def _partition(groups):
    """Order-free view of a grouping: {fingerprint: frozenset(texts)}."""
    return {key: frozenset(members) for key, members in groups.items()}


def _texts(groups, blocks):
    return {key: [blocks[i].text() for i in members]
            for key, members in groups.items()}


# ---------------------------------------------------------------------------
# Property 1: grouping is a pure, order-blind function of fingerprints
# ---------------------------------------------------------------------------

def check_grouping_partition(choices):
    blocks = pool_blocks(choices)
    groups = form_groups(blocks)
    texts = [b.text() for b in blocks]
    flat = [i for members in groups.values() for i in members]
    # No index twice, and member order is first-appearance order.
    assert len(set(flat)) == len(flat)
    for members in groups.values():
        assert members == sorted(members)
    # Every grouped index is the first occurrence of its text and
    # carries the group's fingerprint.
    for key, members in groups.items():
        for i in members:
            assert texts.index(texts[i]) == i
            assert lanes.fingerprint(blocks[i]) == key
    # Every *un*grouped first occurrence is lane-ineligible.
    grouped = set(flat)
    for i, block in enumerate(blocks):
        if texts.index(texts[i]) == i and i not in grouped:
            assert lanes.fingerprint(block) is None


def check_grouping_order_independent(choices, perm_seed):
    blocks = pool_blocks(choices)
    shuffled = list(blocks)
    random.Random(perm_seed).shuffle(shuffled)
    a = _partition(_texts(form_groups(blocks), blocks))
    b = _partition(_texts(form_groups(shuffled), shuffled))
    assert a == b
    # Purity: same input, same output, including member order.
    assert form_groups(blocks) == form_groups(blocks)


# ---------------------------------------------------------------------------
# Property 2: evacuation conserves the lane membership
# ---------------------------------------------------------------------------

#: ``andq $mask, %rbx`` then a load through ``%rbx``: the member's
#: address is ``INIT_CONSTANT & mask``.  Masks from COLLIDE keep the
#: init constant intact (they only add bits where the constant has
#: zeros); masks from DIVERGE move the load to a different page.
COLLIDE_MASKS = tuple(0x7FFFFF00 | b for b in range(6))
DIVERGE_MASKS = (0x7FFF0000, 0x7FFE0000, 0x7FFC0000)
ALL_MASKS = COLLIDE_MASKS + DIVERGE_MASKS

_DIVERGE_SHAPE = "andq $0x%x, %%rbx\nmovq (%%rbx), %%rcx"


def check_evacuation_conserves(masks):
    blocks = [parse_block(_DIVERGE_SHAPE % m) for m in masks]
    texts = [b.text() for b in blocks]
    program = lanes.program_for(blocks, texts)
    addresses = [INIT_CONSTANT & m for m in masks]
    expected = [addr == addresses[0] for addr in addresses]
    try:
        outcome = lanes.certify(program, unroll=16, max_faults=32,
                                init_constant=INIT_CONSTANT)
    except lanes.LaneGiveUp:
        # Dissolution: evacuation left the representative alone.
        assert sum(expected) <= 1
        return
    assert len(outcome.survivors) == len(masks)
    assert outcome.survivors == expected
    # Partition: evacuated tallies cover exactly the non-survivors.
    assert sum(outcome.evacuated.values()) \
        == sum(1 for s in outcome.survivors if not s)
    assert outcome.failure is None
    assert outcome.pages_mapped >= 1


# ---------------------------------------------------------------------------
# Property 3: the row<->state bridge is exact
# ---------------------------------------------------------------------------

def check_lane_row_round_trip(gprs, flags):
    state = MachineState()
    state.load_lane_row(gprs, flags)
    out_g, out_f = state.export_lane_row()
    assert out_g == [v & ((1 << 64) - 1) for v in gprs]
    assert out_f == [bool(f) for f in flags]
    # The dict-like views see the same values (live arrays).
    for name in ("rax", "rsp", "r15"):
        assert state.gpr[name] == out_g[GPR_INDEX[name]]


if HAVE_HYPOTHESIS:
    corpora = st.lists(st.integers(min_value=0, max_value=11),
                       max_size=24)

    @settings(max_examples=30, deadline=None)
    @given(choices=corpora)
    def test_grouping_is_a_partition(choices):
        check_grouping_partition(choices)

    @settings(max_examples=30, deadline=None)
    @given(choices=corpora,
           perm_seed=st.integers(min_value=0, max_value=2**16))
    def test_grouping_is_order_independent(choices, perm_seed):
        check_grouping_order_independent(choices, perm_seed)

    @needs_numpy
    @settings(max_examples=20, deadline=None)
    @given(masks=st.lists(st.sampled_from(ALL_MASKS), min_size=2,
                          max_size=8, unique=True))
    def test_evacuation_conserves_members(masks):
        check_evacuation_conserves(masks)

    @settings(max_examples=30, deadline=None)
    @given(gprs=st.lists(st.integers(min_value=0, max_value=2**64 - 1),
                         min_size=len(GPR_BASES),
                         max_size=len(GPR_BASES)),
           flags=st.lists(st.booleans(), min_size=len(FLAG_NAMES),
                          max_size=len(FLAG_NAMES)))
    def test_lane_row_round_trip(gprs, flags):
        check_lane_row_round_trip(gprs, flags)
else:  # pragma: no cover - seeded fallback
    def _cases(n=30, seed=99):
        rng = random.Random(seed)
        for _ in range(n):
            yield ([rng.randrange(12)
                    for _ in range(rng.randrange(25))],
                   rng.randrange(2**16))

    def test_grouping_is_a_partition():
        for choices, _ in _cases():
            check_grouping_partition(choices)

    def test_grouping_is_order_independent():
        for choices, perm in _cases():
            check_grouping_order_independent(choices, perm)

    @needs_numpy
    def test_evacuation_conserves_members():
        rng = random.Random(7)
        for _ in range(20):
            n = rng.randint(2, 8)
            check_evacuation_conserves(rng.sample(ALL_MASKS, n))

    def test_lane_row_round_trip():
        rng = random.Random(13)
        for _ in range(30):
            check_lane_row_round_trip(
                [rng.randrange(2**64) for _ in GPR_BASES],
                [rng.random() < 0.5 for _ in FLAG_NAMES])


# ---------------------------------------------------------------------------
# Width 1 degenerates to the scalar path
# ---------------------------------------------------------------------------

def test_width_one_disables_batching():
    profiler = BasicBlockProfiler(Machine("haswell", seed=0))
    with lanes.forced(True), lanes.forced_width(1):
        assert not batching_active(profiler)
    with lanes.forced(True), lanes.forced_width(2):
        assert batching_active(profiler)
    with lanes.forced(False), lanes.forced_width(8):
        assert not batching_active(profiler)


@needs_numpy
def test_width_one_seeds_nothing():
    from repro.profiler import lanebatch
    family = [parse_block(_DIVERGE_SHAPE % m) for m in COLLIDE_MASKS]
    profiler = BasicBlockProfiler(Machine("haswell", seed=0))
    with lanes.forced(True), lanes.forced_width(1):
        lanebatch.prepare_lanes(profiler, family)
        assert not profiler._memo
    with lanes.forced(True), lanes.forced_width(len(family)):
        lanebatch.prepare_lanes(profiler, family)
        assert profiler._memo  # same corpus does seed at real widths


def test_load_lane_row_rejects_bad_shapes():
    state = MachineState()
    with pytest.raises(ValueError):
        state.load_lane_row([1, 2, 3], [False] * len(FLAG_NAMES))
    with pytest.raises(ValueError):
        state.load_lane_row([0] * len(GPR_BASES), [True])


# ---------------------------------------------------------------------------
# Process stability: fingerprints must not depend on PYTHONHASHSEED
# ---------------------------------------------------------------------------

_FINGERPRINT_SCRIPT = """
from repro.isa.parser import parse_block
from repro.profiler.lanebatch import form_groups
from repro.runtime.lanes import fingerprint

texts = [
    "movq (%rax), %rbx\\naddq $0x100, %rbx\\nmovq %rbx, 8(%rax)",
    "movq (%rax), %rbx\\naddq $0x110, %rbx\\nmovq %rbx, 8(%rax)",
    "cmpq $0x200, %rsi\\ncmovne %rdi, %r8\\nsete %al",
    "shlq $5, %rbx\\nxorq %rbx, %rcx",
    "mulps %xmm1, %xmm2",
]
blocks = [parse_block(t) for t in texts]
for block in blocks:
    print(fingerprint(block))
for key, members in form_groups(blocks).items():
    print(key, members)
"""


def _fingerprints_under_hashseed(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) \
        + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run([sys.executable, "-c", _FINGERPRINT_SCRIPT],
                         env=env, capture_output=True, text=True,
                         check=True)
    return out.stdout.strip()


def test_fingerprints_stable_across_processes_and_hash_seeds():
    """Lane fingerprints and group keys are pure string functions of
    block shape — a randomised ``hash()`` sneaking in would make the
    parent and pool workers form different lanes, which this catches."""
    a = _fingerprints_under_hashseed("0")
    b = _fingerprints_under_hashseed("4242")
    assert a == b
    assert "None" in a  # the FP block really is ineligible
