"""Virtual memory: mapping, faults, single-physical-page aliasing."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidAddressFault, MemoryFault
from repro.runtime.memory import (MAX_USER_ADDRESS, MIN_USER_ADDRESS,
                                  PAGE_SIZE, PhysicalPage, VirtualMemory,
                                  is_valid_address, page_base, page_of)


class TestAddressHelpers:
    def test_page_of(self):
        assert page_of(0) == 0
        assert page_of(PAGE_SIZE) == 1
        assert page_of(PAGE_SIZE - 1) == 0

    def test_page_base(self):
        assert page_base(0x12345678) == 0x12345000

    def test_validity(self):
        assert not is_valid_address(0)
        assert not is_valid_address(MIN_USER_ADDRESS - 1)
        assert is_valid_address(MIN_USER_ADDRESS)
        assert is_valid_address(0x12345600)
        assert not is_valid_address(MAX_USER_ADDRESS)


class TestFaults:
    def test_unmapped_read_faults(self):
        vm = VirtualMemory()
        with pytest.raises(MemoryFault) as exc:
            vm.read_int(0x12345600, 8)
        assert exc.value.address == 0x12345600
        assert not exc.value.is_write

    def test_unmapped_write_faults(self):
        vm = VirtualMemory()
        with pytest.raises(MemoryFault) as exc:
            vm.write_int(0x2000, 4, 7)
        assert exc.value.is_write

    def test_invalid_address_raises_special_fault(self):
        vm = VirtualMemory()
        with pytest.raises(InvalidAddressFault):
            vm.read_int(0x10, 8)
        with pytest.raises(InvalidAddressFault):
            vm.map_address(MAX_USER_ADDRESS + 5, PhysicalPage())

    def test_invalid_is_subclass(self):
        assert issubclass(InvalidAddressFault, MemoryFault)


class TestMapping:
    def test_read_write_round_trip(self):
        vm = VirtualMemory()
        vm.map_address(0x5000, PhysicalPage())
        vm.write_int(0x5010, 8, 0xDEADBEEF)
        assert vm.read_int(0x5010, 8) == 0xDEADBEEF

    def test_single_physical_page_aliases(self):
        """The paper's core trick: all virtual pages share one frame."""
        vm = VirtualMemory()
        frame = PhysicalPage()
        vm.map_address(0x5000, frame)
        vm.map_address(0xA000, frame)
        vm.write_int(0x5008, 8, 42)
        assert vm.read_int(0xA008, 8) == 42  # same physical bytes

    def test_distinct_frames_do_not_alias(self):
        vm = VirtualMemory()
        vm.map_address(0x5000, PhysicalPage())
        vm.map_address(0xA000, PhysicalPage())
        vm.write_int(0x5008, 8, 42)
        assert vm.read_int(0xA008, 8) == 0

    def test_cross_page_access(self):
        vm = VirtualMemory()
        frame_a, frame_b = PhysicalPage(), PhysicalPage()
        vm.map_page(1, frame_a)
        vm.map_page(2, frame_b)
        vm.write_int(2 * PAGE_SIZE - 4, 8, 0x1122334455667788)
        assert vm.read_int(2 * PAGE_SIZE - 4, 8) == 0x1122334455667788

    def test_cross_page_fault_on_second_page(self):
        vm = VirtualMemory()
        vm.map_page(1, PhysicalPage())
        with pytest.raises(MemoryFault) as exc:
            vm.read_int(2 * PAGE_SIZE - 4, 8)
        assert page_of(exc.value.address) in (1, 2)

    def test_unmap_all(self):
        vm = VirtualMemory()
        vm.map_address(0x5000, PhysicalPage())
        vm.unmap_all()
        assert vm.mapped_pages == ()
        with pytest.raises(MemoryFault):
            vm.read_int(0x5000, 1)

    def test_physical_pages_deduplicated(self):
        vm = VirtualMemory()
        frame = PhysicalPage()
        vm.map_page(5, frame)
        vm.map_page(6, frame)
        vm.map_page(7, PhysicalPage())
        assert len(vm.physical_pages) == 2

    def test_physical_address_tags_frame(self):
        vm = VirtualMemory()
        frame = PhysicalPage()
        vm.map_address(0x5000, frame)
        vm.map_address(0xA000, frame)
        assert vm.physical_address(0x5123) == vm.physical_address(0xA123)


class TestFill:
    def test_fill_pattern(self):
        frame = PhysicalPage()
        frame.fill(0x12345600)
        vm = VirtualMemory()
        vm.map_address(0x5000, frame)
        assert vm.read_int(0x5000, 4) == 0x12345600
        assert vm.read_int(0x5004, 4) == 0x12345600
        assert vm.read_int(0x5008, 8) == 0x1234560012345600

    def test_filled_dwords_are_valid_pointers(self):
        frame = PhysicalPage()
        frame.fill(0x12345600)
        vm = VirtualMemory()
        vm.map_address(0x5000, frame)
        assert is_valid_address(vm.read_int(0x5000, 4))
        # Qword loads exceed user space: dereferencing one makes the
        # block unprofileable, as with the real suite's fill pattern.
        assert not is_valid_address(vm.read_int(0x5000, 8))

    def test_filled_f32_lanes_are_normal_floats(self):
        import struct
        frame = PhysicalPage()
        frame.fill(0x12345600)
        for offset in range(0, 32, 4):
            lane = struct.unpack("<f", bytes(frame.data[offset:offset + 4]))[0]
            assert lane != 0.0 and abs(lane) >= 2.0 ** -126


@given(st.integers(min_value=MIN_USER_ADDRESS,
                   max_value=MIN_USER_ADDRESS + 10 * PAGE_SIZE),
       st.integers(min_value=1, max_value=32),
       st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_write_read_property(address, width, value):
    vm = VirtualMemory()
    frame = PhysicalPage()
    for page in range(page_of(address), page_of(address + width) + 1):
        vm.map_page(page, PhysicalPage())
    width = min(width, 8)
    vm.write_int(address, width, value)
    assert vm.read_int(address, width) == value & ((1 << (8 * width)) - 1)
