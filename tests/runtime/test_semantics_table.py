"""Table-driven semantics coverage across the opcode vocabulary.

Each row: (setup registers, one instruction, expected register state).
Complements the per-family tests with breadth — every major semantic
handler is exercised at least once with a concrete expected value.
"""

import struct

import pytest

from tests.runtime.helpers import Harness

M64 = (1 << 64) - 1


def f32(x):
    return struct.unpack("<I", struct.pack("<f", x))[0]


def f64(x):
    return struct.unpack("<Q", struct.pack("<d", x))[0]


CASES = [
    # mnemonic text, {setup}, {expected}
    ("add %rbx, %rax", {"rax": 2, "rbx": 3}, {"rax": 5}),
    ("sub $7, %rcx", {"rcx": 10}, {"rcx": 3}),
    ("and %r8, %r9", {"r8": 0xF0F0, "r9": 0xFF00}, {"r9": 0xF000}),
    ("or $0x0F, %rdx", {"rdx": 0xF0}, {"rdx": 0xFF}),
    ("xor %rsi, %rdi", {"rsi": 0b1100, "rdi": 0b1010},
     {"rdi": 0b0110}),
    ("adc %rbx, %rax", {"rax": 1, "rbx": 2, "__cf__": 1}, {"rax": 4}),
    ("sbb %rbx, %rax", {"rax": 5, "rbx": 2, "__cf__": 1}, {"rax": 2}),
    ("inc %r10", {"r10": 41}, {"r10": 42}),
    ("dec %r11", {"r11": 1}, {"r11": 0}),
    ("neg %r12", {"r12": 1}, {"r12": M64}),
    ("not %r13", {"r13": 0}, {"r13": M64}),
    ("mov $123, %r14", {}, {"r14": 123}),
    ("movzx %bl, %eax", {"rbx": 0x1FF}, {"rax": 0xFF}),
    ("movsx %bl, %eax", {"rbx": 0xFF}, {"rax": 0xFFFFFFFF}),
    ("movslq %ebx, %rax", {"rbx": 0x80000000},
     {"rax": 0xFFFFFFFF80000000}),
    ("lea 4(%rbx, %rcx, 8), %rax", {"rbx": 100, "rcx": 2},
     {"rax": 120}),
    ("xchg %rax, %rbx", {"rax": 1, "rbx": 2}, {"rax": 2, "rbx": 1}),
    ("shl $4, %rax", {"rax": 1}, {"rax": 16}),
    ("shr $4, %rax", {"rax": 0x100}, {"rax": 0x10}),
    ("sar $2, %rax", {"rax": M64 - 7}, {"rax": M64 - 1}),  # -8 >> 2
    ("rol $8, %rax", {"rax": 0xFF}, {"rax": 0xFF00}),
    ("ror $8, %rax", {"rax": 0xFF00}, {"rax": 0xFF}),
    ("shld $4, %rbx, %rax",
     {"rax": 0x1, "rbx": 0xF000000000000000}, {"rax": 0x1F}),
    ("shrd $4, %rbx, %rax", {"rax": 0x10, "rbx": 0xF},
     {"rax": 0xF000000000000001}),
    ("bsf %rbx, %rax", {"rbx": 0x80}, {"rax": 7}),
    ("bsr %rbx, %rax", {"rbx": 0x81}, {"rax": 7}),
    ("popcnt %rbx, %rax", {"rbx": 0x7}, {"rax": 3}),
    ("tzcnt %rbx, %rax", {"rbx": 0x8}, {"rax": 3}),
    ("lzcnt %rbx, %rax", {"rbx": 1}, {"rax": 63}),
    ("bswap %rax", {"rax": 0x0102030405060708},
     {"rax": 0x0807060504030201}),
    ("imul %rbx, %rax", {"rax": 6, "rbx": 7}, {"rax": 42}),
    ("imul $-2, %rbx, %rax", {"rbx": 21}, {"rax": (-42) & M64}),
    ("cdq", {"rax": 0x80000000}, {"rdx": 0xFFFFFFFF}),
    ("cqo", {"rax": 1 << 63}, {"rdx": M64}),
    ("cdqe", {"rax": 0xFFFFFFFF}, {"rax": M64}),
    # vector logic / integer
    ("pand %xmm1, %xmm0", {"xmm0": 0xFF00, "xmm1": 0x0FF0},
     {"xmm0": 0x0F00}),
    ("por %xmm1, %xmm0", {"xmm0": 0xF0, "xmm1": 0x0F},
     {"xmm0": 0xFF}),
    ("pandn %xmm1, %xmm0", {"xmm0": 0xF0, "xmm1": 0xFF},
     {"xmm0": 0x0F}),
    ("paddq %xmm1, %xmm0", {"xmm0": 5, "xmm1": 7}, {"xmm0": 12}),
    ("psubd %xmm1, %xmm0", {"xmm0": 9, "xmm1": 4}, {"xmm0": 5}),
    ("pmulld %xmm1, %xmm0", {"xmm0": 6, "xmm1": 7}, {"xmm0": 42}),
    ("psllq $8, %xmm0", {"xmm0": 0xFF}, {"xmm0": 0xFF00}),
    ("psrlq $8, %xmm0", {"xmm0": 0xFF00}, {"xmm0": 0xFF}),
    ("pcmpeqq %xmm1, %xmm0", {"xmm0": 5, "xmm1": 5},
     {"xmm0_low64": M64}),
    # vector FP
    ("addss %xmm1, %xmm0", {"xmm0": f32(1.5), "xmm1": f32(2.0)},
     {"xmm0_f32": 3.5}),
    ("subss %xmm1, %xmm0", {"xmm0": f32(5.0), "xmm1": f32(2.0)},
     {"xmm0_f32": 3.0}),
    ("mulss %xmm1, %xmm0", {"xmm0": f32(2.5), "xmm1": f32(4.0)},
     {"xmm0_f32": 10.0}),
    ("divss %xmm1, %xmm0", {"xmm0": f32(10.0), "xmm1": f32(4.0)},
     {"xmm0_f32": 2.5}),
    ("minss %xmm1, %xmm0", {"xmm0": f32(3.0), "xmm1": f32(2.0)},
     {"xmm0_f32": 2.0}),
    ("maxss %xmm1, %xmm0", {"xmm0": f32(3.0), "xmm1": f32(2.0)},
     {"xmm0_f32": 3.0}),
    ("sqrtss %xmm1, %xmm0", {"xmm1": f32(16.0)}, {"xmm0_f32": 4.0}),
    ("rcpps %xmm1, %xmm0", {"xmm1": f32(4.0)}, {"xmm0_f32": 0.25}),
    ("rsqrtps %xmm1, %xmm0", {"xmm1": f32(4.0)}, {"xmm0_f32": 0.5}),
    ("roundss $0, %xmm1, %xmm0", {"xmm1": f32(2.6)},
     {"xmm0_f32": 3.0}),
    ("addsd %xmm1, %xmm0", {"xmm0": f64(1.25), "xmm1": f64(2.0)},
     {"xmm0_f64": 3.25}),
    ("cvtsi2sd %rax, %xmm0", {"rax": 7}, {"xmm0_f64": 7.0}),
    ("cvttsd2si %xmm0, %rax", {"xmm0": f64(9.9)}, {"rax": 9}),
    ("cvtss2sd %xmm1, %xmm0", {"xmm1": f32(1.5)}, {"xmm0_f64": 1.5}),
    ("cvtsd2ss %xmm1, %xmm0", {"xmm1": f64(2.5)}, {"xmm0_f32": 2.5}),
    # VEX three-operand forms
    ("vaddps %xmm2, %xmm1, %xmm0",
     {"xmm1": f32(1.0), "xmm2": f32(2.0)}, {"xmm0_f32": 3.0}),
    ("vpaddd %xmm2, %xmm1, %xmm0", {"xmm1": 10, "xmm2": 32},
     {"xmm0_low64": 42}),
    ("vfmadd231sd %xmm2, %xmm1, %xmm0",
     {"xmm0": f64(1.0), "xmm1": f64(2.0), "xmm2": f64(3.0)},
     {"xmm0_f64": 7.0}),
]


@pytest.mark.parametrize("text,setup,expected", CASES,
                         ids=[c[0] for c in CASES])
def test_semantics(text, setup, expected):
    h = Harness()
    for name, value in setup.items():
        if name == "__cf__":
            h.state.flags["cf"] = bool(value)
        else:
            h.set_reg(name, value)
    h.run(text)
    for name, value in expected.items():
        if name.endswith("_f32"):
            reg = name[:-4]
            got = struct.unpack(
                "<f", struct.pack("<I", h.reg(reg) & 0xFFFFFFFF))[0]
            assert got == pytest.approx(value, rel=1e-6), text
        elif name.endswith("_f64"):
            reg = name[:-4]
            got = struct.unpack(
                "<d", (h.reg(reg) & M64).to_bytes(8, "little"))[0]
            assert got == pytest.approx(value, rel=1e-9), text
        elif name.endswith("_low64"):
            assert h.reg(name[:-6]) & M64 == value, text
        else:
            assert h.reg(name) == value, text
