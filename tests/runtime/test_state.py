"""Architectural state: x86 register write semantics."""

from hypothesis import given, strategies as st

from repro.runtime.state import INIT_CONSTANT, MachineState, state_equal
from repro.isa.registers import lookup


class TestWriteRules:
    def test_64bit_write(self):
        st_ = MachineState()
        st_.write(lookup("rax"), 0x1122334455667788)
        assert st_.read(lookup("rax")) == 0x1122334455667788

    def test_32bit_write_zero_extends(self):
        st_ = MachineState()
        st_.write(lookup("rax"), 0xFFFFFFFFFFFFFFFF)
        st_.write(lookup("eax"), 0x12345678)
        assert st_.read(lookup("rax")) == 0x12345678

    def test_16bit_write_merges(self):
        st_ = MachineState()
        st_.write(lookup("rax"), 0x1122334455667788)
        st_.write(lookup("ax"), 0xAAAA)
        assert st_.read(lookup("rax")) == 0x112233445566AAAA

    def test_8bit_low_write_merges(self):
        st_ = MachineState()
        st_.write(lookup("rax"), 0x1122334455667788)
        st_.write(lookup("al"), 0xCC)
        assert st_.read(lookup("rax")) == 0x11223344556677CC

    def test_high_byte_write(self):
        st_ = MachineState()
        st_.write(lookup("rax"), 0)
        st_.write(lookup("ah"), 0xEE)
        assert st_.read(lookup("rax")) == 0xEE00
        assert st_.read(lookup("ah")) == 0xEE

    def test_sse_write_preserves_upper_ymm(self):
        st_ = MachineState()
        st_.write(lookup("ymm0"), (1 << 255) | 0xFF)
        st_.write(lookup("xmm0"), 0x1)
        assert st_.read(lookup("ymm0")) >> 128 == 1 << 127

    def test_vex_write_zeroes_upper_ymm(self):
        st_ = MachineState()
        st_.write(lookup("ymm0"), (1 << 255) | 0xFF)
        st_.write(lookup("xmm0"), 0x1, vex=True)
        assert st_.read(lookup("ymm0")) == 1

    def test_write_masks_value(self):
        st_ = MachineState()
        st_.write(lookup("al"), 0x1FF)
        assert st_.read(lookup("al")) == 0xFF


class TestInitialization:
    def test_canonical_init(self):
        st_ = MachineState()
        st_.initialize()
        assert st_.read(lookup("rdi")) == INIT_CONSTANT
        assert st_.read(lookup("r15")) == INIT_CONSTANT
        assert not any(st_.flags.values())

    def test_vector_splat_is_one_point_zero(self):
        st_ = MachineState()
        st_.initialize()
        ymm = st_.read(lookup("ymm3"))
        for lane in range(8):
            assert (ymm >> (32 * lane)) & 0xFFFFFFFF == 0x3F800000

    def test_ftz_persistence(self):
        st_ = MachineState()
        st_.initialize(ftz=True)
        st_.initialize()  # no ftz argument: preserve
        assert st_.ftz
        st_.initialize(ftz=False)
        assert not st_.ftz

    def test_copy_is_independent(self):
        st_ = MachineState()
        st_.initialize()
        clone = st_.copy()
        clone.write(lookup("rax"), 0)
        assert st_.read(lookup("rax")) == INIT_CONSTANT

    def test_snapshot_equality(self):
        a, b = MachineState(), MachineState()
        a.initialize()
        b.initialize()
        assert state_equal(a, b)
        b.write(lookup("rbx"), 1)
        assert not state_equal(a, b)
        assert state_equal(a, b, registers=["rax", "rcx"])


@given(st.integers(min_value=0, max_value=(1 << 64) - 1),
       st.sampled_from(["al", "ah", "ax", "eax"]))
def test_partial_write_never_touches_other_registers(value, view):
    st_ = MachineState()
    st_.initialize()
    st_.write(lookup(view), value)
    assert st_.read(lookup("rbx")) == INIT_CONSTANT


@given(st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_read_back_what_you_wrote_64(value):
    st_ = MachineState()
    st_.write(lookup("r11"), value)
    assert st_.read(lookup("r11")) == value
    assert st_.read(lookup("r11d")) == value & 0xFFFFFFFF
    assert st_.read(lookup("r11b")) == value & 0xFF
