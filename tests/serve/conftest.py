"""Shared fixtures for the serve suite.

Telemetry is a process-wide hub and chaos a process-wide switchboard;
both are reset around every test so counter assertions and forced
policies never leak between cases.
"""

import pytest

from repro import telemetry
from repro.resilience import chaos
from repro.serve.config import ServeConfig


@pytest.fixture(autouse=True)
def _isolate_telemetry():
    telemetry.reset()
    yield
    telemetry.reset()


@pytest.fixture(autouse=True)
def _chaos_off(monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    chaos.set_policy(None)
    yield
    chaos.set_policy(None)


class FakeClock:
    """A hand-cranked monotonic clock for admission/breaker tests."""

    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def serve_config(tmp_path):
    """A serial, fast-coalescing config rooted in the test tmpdir."""
    return ServeConfig(socket=str(tmp_path / "serve.sock"), jobs=1,
                       coalesce_ms=1.0,
                       state_dir=str(tmp_path / "state"))
