"""Admission control: shedding is explicit, bounded, and never blocks.

Every decision here is driven by a fake clock and (for the chaos
branch) a forced policy — no sleeps, no real overload generation.
"""

from dataclasses import dataclass

from repro import telemetry
from repro.resilience import chaos
from repro.resilience.chaos import ChaosPolicy
from repro.serve.admission import AdmissionQueue, TokenBucket


@dataclass
class Item:
    digest: str


class TestAdmissionQueue:
    def test_admits_until_capacity_then_sheds(self, clock):
        queue = AdmissionQueue(capacity=3, clock=clock)
        for i in range(3):
            assert queue.try_admit(Item(f"d{i}")).admitted
        decision = queue.try_admit(Item("d3"))
        assert not decision.admitted
        assert decision.reason == "queue_full"
        assert decision.retry_after_ms > 0
        assert len(queue) == 3  # the shed item never entered

    def test_shed_is_counted(self, clock):
        telemetry.enable()
        queue = AdmissionQueue(capacity=1, clock=clock)
        queue.try_admit(Item("a"))
        queue.try_admit(Item("b"))
        counters = telemetry.registry().snapshot()["counters"]
        assert counters["serve.shed.queue_full"] == 1

    def test_pop_batch_is_fifo_and_bounded(self, clock):
        queue = AdmissionQueue(capacity=8, clock=clock)
        for i in range(5):
            queue.try_admit(Item(f"d{i}"))
        batch = queue.pop_batch(3)
        assert [item.digest for item in batch] == ["d0", "d1", "d2"]
        assert [item.digest for item in queue.pop_all()] == ["d3", "d4"]
        assert len(queue) == 0

    def test_retry_after_tracks_service_time(self, clock):
        queue = AdmissionQueue(capacity=4, clock=clock)
        queue.try_admit(Item("a"))
        before = queue.retry_after_ms()
        for _ in range(20):
            queue.observe_service_time(2.0)  # slow service
        assert queue.retry_after_ms() > before
        assert queue.retry_after_ms() <= 30_000.0  # bounded hint

    def test_chaos_forces_the_full_branch(self, clock):
        queue = AdmissionQueue(capacity=64, clock=clock)
        policy = ChaosPolicy(seed=7, rates={"serve_queue_full": 1.0})
        with chaos.forced(policy):
            decision = queue.try_admit(Item("any"))
        assert not decision.admitted
        assert decision.reason == "queue_full"
        # Chaos off again: the same (empty) queue admits normally.
        assert queue.try_admit(Item("any")).admitted


class TestTokenBucket:
    def test_rate_zero_disables_limiting(self, clock):
        bucket = TokenBucket(rate=0.0, burst=1, clock=clock)
        assert all(bucket.allow("c").admitted for _ in range(100))

    def test_burst_then_shed_with_retry_hint(self, clock):
        bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
        assert bucket.allow("c").admitted
        assert bucket.allow("c").admitted
        decision = bucket.allow("c")
        assert not decision.admitted
        assert decision.reason == "rate_limited"
        # One token refills in one second at rate=1.
        assert 0 < decision.retry_after_ms <= 1000.0

    def test_refill_from_clock(self, clock):
        bucket = TokenBucket(rate=2.0, burst=1, clock=clock)
        assert bucket.allow("c").admitted
        assert not bucket.allow("c").admitted
        clock.advance(0.5)  # 0.5s * 2/s = one token back
        assert bucket.allow("c").admitted

    def test_clients_are_independent(self, clock):
        bucket = TokenBucket(rate=1.0, burst=1, clock=clock)
        assert bucket.allow("a").admitted
        assert not bucket.allow("a").admitted
        assert bucket.allow("b").admitted  # b has its own bucket
