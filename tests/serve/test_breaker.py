"""Circuit breaker state machine, driven entirely by a fake clock."""

from repro import telemetry
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


def _tripped(clock, threshold=3, cooldown_s=5.0):
    breaker = CircuitBreaker(threshold=threshold,
                             cooldown_s=cooldown_s, clock=clock)
    for _ in range(threshold):
        breaker.record_failure()
    return breaker


class TestTrip:
    def test_consecutive_failures_open_the_breaker(self, clock):
        breaker = CircuitBreaker(threshold=3, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow_pool()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow_pool()

    def test_success_resets_the_consecutive_count(self, clock):
        breaker = CircuitBreaker(threshold=2, clock=clock)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # never two in a row


class TestHalfOpen:
    def test_cooldown_grants_a_single_probe(self, clock):
        breaker = _tripped(clock, cooldown_s=5.0)
        clock.advance(4.9)
        assert not breaker.allow_pool()  # still cooling down
        clock.advance(0.2)
        assert breaker.allow_pool()      # the probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow_pool()  # one probe at a time

    def test_probe_success_closes(self, clock):
        breaker = _tripped(clock, cooldown_s=1.0)
        clock.advance(1.0)
        assert breaker.allow_pool()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow_pool()

    def test_probe_failure_reopens_and_restarts_cooldown(self, clock):
        breaker = _tripped(clock, cooldown_s=1.0)
        clock.advance(1.0)
        assert breaker.allow_pool()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(0.5)
        assert not breaker.allow_pool()  # cooldown restarted at reopen
        clock.advance(0.6)
        assert breaker.allow_pool()


class TestObservability:
    def test_transitions_emit_events_and_gauge(self, clock):
        sink = telemetry.MemorySink()
        telemetry.enable(sink)
        breaker = _tripped(clock, threshold=1, cooldown_s=1.0)
        clock.advance(1.0)
        breaker.allow_pool()
        breaker.record_success()
        states = [r["state"] for r in sink.records
                  if r.get("name") == "serve.breaker"]
        assert states == [OPEN, HALF_OPEN, CLOSED]
        gauges = telemetry.registry().snapshot()["gauges"]
        assert gauges["serve.breaker_open"] == 0
