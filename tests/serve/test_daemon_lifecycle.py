"""Daemon lifecycle: SIGTERM drains, SIGKILL replays, bytes match.

The acceptance matrix for the crash-safe service: on every
microarchitecture, serial and pooled, a daemon SIGKILLed after
admitting a request (journaled ``req``, no ``done``) must — on
restart — replay that request to results **byte-identical** to an
uninterrupted daemon's, before the listener even opens.  SIGTERM must
instead drain gracefully: exit 0, remove the socket, and (with
``--trace --heartbeat``) leave a final heartbeat snapshot plus a
``serve.drain_end`` event as the trace tail.

Real subprocesses throughout (``python -m repro serve``), killed by
process group exactly like the batch-pipeline kill/resume suite.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.serve.client import ServeClient, ServeClientError
from repro.serve.core import canonical_results_bytes, request_digest
from repro.serve.requestlog import REQUEST_LOG_NAME, read_done_records

ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))

BLOCKS = ["addq %rax, %rbx",
          "imulq %rcx, %rdx\naddq %rax, %rbx",
          "addq $3, %rax\nimulq $2, %rcx"]

CASES = [
    pytest.param("ivybridge", 1, id="ivybridge-serial"),
    pytest.param("haswell", 2, id="haswell-pooled"),
    pytest.param("skylake", 2, id="skylake-pooled"),
]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    for var in ("REPRO_CHAOS", "REPRO_SERVE_STATE", "REPRO_TRACE"):
        env.pop(var, None)
    return env


class Daemon:
    """One ``repro serve`` subprocess on a Unix socket."""

    def __init__(self, tmp_path, state, name, jobs=1,
                 coalesce_ms=1.0, extra_args=()):
        self.socket_path = str(tmp_path / f"{name}.sock")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--socket", self.socket_path, "--state", str(state),
             "--jobs", str(jobs), "--coalesce-ms", str(coalesce_ms),
             *extra_args],
            env=_env(), start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        self.client = ServeClient(socket_path=self.socket_path,
                                  timeout=60.0)
        try:
            self.client.wait_ready(deadline_s=60.0)
        except ServeClientError:
            self.kill()
            raise

    def sigterm(self, timeout=60.0) -> int:
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)

    def kill(self) -> None:
        try:
            os.killpg(self.proc.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        self.proc.wait(timeout=30)


def _journal_has_req(state) -> bool:
    try:
        with open(os.path.join(str(state), REQUEST_LOG_NAME)) as fh:
            return '"kind": "req"' in fh.read()
    except OSError:
        return False


@pytest.mark.parametrize("uarch,jobs", CASES)
def test_sigkill_restart_replays_identical_bytes(tmp_path, uarch,
                                                 jobs):
    digest = request_digest(uarch, 0, BLOCKS)

    # 1. Baseline: an uninterrupted daemon answers the request.
    baseline_state = tmp_path / "baseline"
    daemon = Daemon(tmp_path, baseline_state, "baseline", jobs=jobs)
    try:
        response = daemon.client.profile(BLOCKS, uarch=uarch)
        assert response.status == 200
        assert response.body["request"] == digest
        baseline = canonical_results_bytes(response.body["results"])
    finally:
        assert daemon.sigterm() == 0

    # 2. Crash: a long coalesce window holds the admitted (and
    #    durably journaled) request in the queue; SIGKILL the whole
    #    group before the batcher picks it up.
    crash_state = tmp_path / "crash"
    daemon = Daemon(tmp_path, crash_state, "crash", jobs=jobs,
                    coalesce_ms=5000.0)
    try:
        errors = []

        def _doomed_request():
            try:
                daemon.client.profile(BLOCKS, uarch=uarch)
            except ServeClientError as exc:
                errors.append(exc)

        sender = threading.Thread(target=_doomed_request)
        sender.start()
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if _journal_has_req(crash_state):
                break
            time.sleep(0.02)
        else:
            pytest.fail("request never reached the journal")
    finally:
        daemon.kill()
    sender.join(timeout=30)
    assert errors, "client should have lost its connection"
    # The dead daemon journaled the request but never answered it.
    journal_path = os.path.join(str(crash_state), REQUEST_LOG_NAME)
    assert digest not in dict(read_done_records(journal_path))

    # 3. Restart over the crash state: recovery replays before the
    #    listener opens, so readiness implies the work is journaled.
    daemon = Daemon(tmp_path, crash_state, "restart", jobs=jobs)
    try:
        replayed = dict(read_done_records(journal_path))
        assert canonical_results_bytes(replayed[digest]) == baseline
        # A re-sent request answers from the journal memo with the
        # same bytes and no engine work.
        again = daemon.client.profile(BLOCKS, uarch=uarch)
        assert again.status == 200
        assert again.body["cached"] is True
        assert canonical_results_bytes(again.body["results"]) == \
            baseline
    finally:
        assert daemon.sigterm() == 0


@pytest.mark.parametrize("jobs", [1, 2], ids=["serial", "pooled"])
def test_sigterm_drains_gracefully(tmp_path, jobs):
    state = tmp_path / "state"
    daemon = Daemon(tmp_path, state, "drain", jobs=jobs)
    try:
        assert daemon.client.profile(BLOCKS).status == 200
    finally:
        assert daemon.sigterm() == 0
    # The drain removed the socket and left no pending journal work.
    assert not os.path.exists(daemon.socket_path)
    journal_path = os.path.join(str(state), REQUEST_LOG_NAME)
    assert request_digest("haswell", 0, BLOCKS) in \
        dict(read_done_records(journal_path))


def test_sigterm_leaves_final_heartbeat_in_trace(tmp_path):
    trace = tmp_path / "trace.ndjson"
    state = tmp_path / "state"
    # A long interval guarantees the only beats are start-up timer
    # ticks (none) plus the final stop() snapshot.
    daemon = Daemon(tmp_path, state, "hb",
                    extra_args=("--trace", str(trace),
                                "--heartbeat", "600"))
    try:
        assert daemon.client.profile(BLOCKS).status == 200
    finally:
        assert daemon.sigterm() == 0
    records = [json.loads(line)
               for line in trace.read_text().splitlines() if line]
    beats = [r for r in records if r.get("name") == "heartbeat"]
    assert beats, "no heartbeat in the trace"
    assert beats[-1]["final"] is True
    names = [r.get("name") for r in records]
    assert "serve.drain_begin" in names
    assert "serve.drain_end" in names
    # The final beat is emitted after the drain completes: terminal
    # state, not the last timer tick.
    assert names.index("serve.drain_end") < \
        len(names) - 1 - names[::-1].index("heartbeat")
