"""Wire-protocol tests: a real daemon on a Unix socket, in-process.

The daemon runs on its own event loop in a background thread; the
blocking :class:`ServeClient` talks to it over the socket exactly as
external tooling would.  Chaos policies are process-global, so forcing
one in the test thread arms the daemon thread too — overload and
fault behaviour is exercised deterministically, with no load
generation and no sleeps beyond the chaos hang itself.
"""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro import telemetry
from repro.resilience import chaos
from repro.resilience.chaos import ChaosPolicy
from repro.serve import http
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.config import ServeConfig
from repro.serve.core import ProfilingService
from repro.serve.daemon import ServeDaemon

ADD = "addq %rax, %rbx"
MUL = "imulq %rcx, %rdx\naddq %rax, %rbx"


class DaemonHarness:
    """Run a ServeDaemon on a background-thread event loop."""

    def __init__(self, config):
        self.config = config
        self.service = ProfilingService(config)
        self.daemon = ServeDaemon(self.service, config)
        self.loop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        self.loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self.loop)
        try:
            self.loop.run_until_complete(self.daemon.run())
        finally:
            self.loop.close()

    def __enter__(self):
        # Metrics-only collection, exactly what ``repro serve`` turns
        # on — the counters back /v1/stats.
        telemetry.enable()
        self._thread.start()
        client = ServeClient(socket_path=self.config.socket,
                             timeout=30.0)
        client.wait_ready()
        return client

    def __exit__(self, exc_type, exc, tb):
        deadline = time.monotonic() + 5.0
        while self.loop is None and time.monotonic() < deadline:
            time.sleep(0.01)
        if self.loop is not None and self.loop.is_running():
            self.loop.call_soon_threadsafe(self.daemon._begin_drain,
                                           "TEST")
        self._thread.join(timeout=30.0)
        assert not self._thread.is_alive(), "daemon failed to drain"


@pytest.fixture
def harness(tmp_path):
    config = ServeConfig(socket=str(tmp_path / "serve.sock"), jobs=1,
                         coalesce_ms=1.0, window=4,
                         state_dir=str(tmp_path / "state"))
    return DaemonHarness(config)


class TestRoutes:
    def test_health_profile_and_memo(self, harness):
        with harness as client:
            health = client.health()
            assert health.status == 200
            assert health.body["status"] == "ok"

            first = client.profile([ADD, MUL, "bogus %zz"])
            assert first.status == 200
            assert first.body["cached"] is False
            statuses = [r["status"] for r in first.body["results"]]
            assert statuses == ["ok", "ok", "parse_error"]

            again = client.profile([ADD, MUL, "bogus %zz"])
            assert again.status == 200
            assert again.body["cached"] is True
            assert again.body["results"] == first.body["results"]
            assert again.body["request"] == first.body["request"]

    def test_error_statuses(self, harness):
        with harness as client:
            assert client.request("GET", "/v1/nope").status == 404
            assert client.request("GET", "/v1/profile").status == 405
            assert client.request("POST", "/v1/health").status == 405
            assert client.profile([]).status == 400
            bad = client.profile([ADD], uarch="zen4")
            assert bad.status == 400
            assert "zen4" in bad.body["detail"]

    def test_malformed_json_is_a_clean_400(self, harness):
        with harness as client:
            body = b"{not json"
            head = (f"POST /v1/profile HTTP/1.1\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"Connection: close\r\n\r\n").encode()
            with socket.socket(socket.AF_UNIX,
                               socket.SOCK_STREAM) as sock:
                sock.settimeout(10.0)
                sock.connect(harness.config.socket)
                sock.sendall(head + body)
                raw = b""
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    raw += chunk
            assert b" 400 " in raw.split(b"\r\n", 1)[0]

    def test_stats_exposes_counters_and_queue(self, harness):
        with harness as client:
            client.profile([ADD])
            stats = client.stats()
            assert stats.status == 200
            assert stats.body["counters"]["serve.requests"] >= 1
            assert stats.body["breaker"] == "closed"
            assert isinstance(stats.body["queue_depth"], int)


class TestChaos:
    def test_queue_full_chaos_sheds_429(self, harness):
        with harness as client:
            policy = ChaosPolicy(seed=7,
                                 rates={"serve_queue_full": 1.0})
            with chaos.forced(policy):
                shed = client.profile([ADD])
            assert shed.status == 429
            assert shed.body["reason"] == "queue_full"
            assert shed.body["retry_after_ms"] > 0
            assert shed.retry_after_s >= 1
            # Retrying after the (chaos-shaped) overload succeeds.
            assert client.profile([ADD]).status == 200

    def test_accept_error_chaos_drops_the_connection(self, harness):
        with harness as client:
            policy = ChaosPolicy(seed=7,
                                 rates={"serve_accept_error": 1.0})
            with chaos.forced(policy):
                with pytest.raises(ServeClientError):
                    client.profile([ADD])
            # The daemon survives its own chaos: next request works.
            assert client.profile([ADD]).status == 200

    def test_slow_client_chaos_stalls_but_serves(self, harness):
        with harness as client:
            policy = ChaosPolicy(seed=7,
                                 rates={"serve_slow_client": 1.0},
                                 hang_seconds=0.3)
            with chaos.forced(policy):
                started = time.monotonic()
                response = client.profile([ADD])
                elapsed = time.monotonic() - started
            assert response.status == 200
            assert elapsed >= 0.3
            assert client.health().status == 200


class TestDeadlines:
    def test_expired_in_queue_is_504_and_journaled(self, tmp_path):
        # A long coalesce window guarantees the 1ms deadline expires
        # while the request is still queued — cancelled pre-worker.
        config = ServeConfig(socket=str(tmp_path / "serve.sock"),
                             jobs=1, coalesce_ms=300.0,
                             state_dir=str(tmp_path / "state"))
        with DaemonHarness(config) as client:
            missed = client.profile([ADD], deadline_ms=1)
            assert missed.status == 504
            assert "deadline" in missed.body["detail"]
            stats = client.stats()
            assert stats.body["counters"]["serve.deadline_miss"] == 1
            # The drop is closed out, not memoized: the same blocks
            # with a sane deadline compute fresh and succeed.
            ok = client.profile([ADD], deadline_ms=60_000)
            assert ok.status == 200
            assert ok.body["cached"] is False


class TestRateLimit:
    def test_over_rate_client_sheds_with_retry_after(self, tmp_path):
        config = ServeConfig(socket=str(tmp_path / "serve.sock"),
                             jobs=1, coalesce_ms=1.0,
                             rate=0.001, burst=1,
                             state_dir=str(tmp_path / "state"))
        with DaemonHarness(config) as client:
            assert client.profile([ADD], client="greedy").status == 200
            shed = client.profile([MUL], client="greedy")
            assert shed.status == 429
            assert shed.body["reason"] == "rate_limited"
            assert shed.retry_after_s >= 1
            # Another client is unaffected.
            assert client.profile([MUL], client="polite").status == 200


class TestDraining:
    def test_draining_daemon_sheds_profile_but_answers_health(
            self, serve_config):
        service = ProfilingService(serve_config)
        service.start()
        daemon = ServeDaemon(service, serve_config)
        daemon.draining = True
        request = http.HttpRequest(
            "POST", "/v1/profile", {},
            json.dumps({"blocks": [ADD]}).encode())
        status, body, headers, _ = asyncio.run(daemon._route(request))
        assert status == 503
        assert headers["Retry-After"] == "1"
        health = http.HttpRequest("GET", "/v1/health", {}, b"")
        status, body, _, _ = asyncio.run(daemon._route(health))
        assert status == 200
        assert body["status"] == "draining"
        service.close()
