"""Request journal: CRC-self-checked lines, pending/completed truth.

The journal is both the crash-recovery source (``req`` without
``done`` replays) and the request-level dedup memo (``done`` records
answer identical requests without engine work), so the load-time
bookkeeping must stay honest under torn tails and dropped work.
"""

import os

from repro.resilience.journal import journal_line, parse_journal_line
from repro.serve.requestlog import (REQUEST_LOG_NAME, RequestJournal,
                                    read_done_records)

BODY = {"blocks": ["addq %rax, %rbx"], "uarch": "haswell", "seed": 0,
        "client": "t", "deadline_ms": 0.0}
RESULTS = [{"status": "ok", "throughput": 1.0}]


def _journal(tmp_path):
    return RequestJournal(str(tmp_path / REQUEST_LOG_NAME))


class TestRoundTrip:
    def test_fresh_journal_starts_empty(self, tmp_path):
        with _journal(tmp_path) as journal:
            assert journal.open() == {}
            assert journal.completed == {}
        # The begin record makes the file non-empty but adds nothing
        # to pending on reopen.
        with _journal(tmp_path) as journal:
            assert journal.open() == {}

    def test_req_without_done_is_pending_on_reload(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.open()
            journal.record_request("d1", BODY)
        with _journal(tmp_path) as journal:
            assert journal.open() == {"d1": BODY}
            assert journal.completed == {}

    def test_done_clears_pending_and_feeds_the_memo(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.open()
            journal.record_request("d1", BODY)
            journal.record_done("d1", RESULTS)
        with _journal(tmp_path) as journal:
            assert journal.open() == {}
            assert journal.completed == {"d1": RESULTS}
        assert read_done_records(
            str(tmp_path / REQUEST_LOG_NAME)) == [("d1", RESULTS)]

    def test_dropped_closes_out_without_memoizing(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.open()
            journal.record_request("d1", BODY)
            journal.record_dropped("d1", "deadline")
        with _journal(tmp_path) as journal:
            assert journal.open() == {}          # never replays
            assert journal.completed == {}        # never answers


class TestTornTail:
    def test_torn_final_line_is_dropped_not_fatal(self, tmp_path):
        path = str(tmp_path / REQUEST_LOG_NAME)
        with _journal(tmp_path) as journal:
            journal.open()
            journal.record_request("d1", BODY)
            journal.record_done("d1", RESULTS)
            journal.record_request("d2", BODY)
        # SIGKILL mid-append: truncate the last line partway through.
        with open(path, "rb") as fh:
            data = fh.read()
        with open(path, "wb") as fh:
            fh.write(data[:-20])
        with _journal(tmp_path) as journal:
            pending = journal.open()
        assert journal.torn_records == 1
        assert pending == {}                      # d2's req was torn
        assert journal.completed == {"d1": RESULTS}

    def test_garbage_line_is_dropped(self, tmp_path):
        path = str(tmp_path / REQUEST_LOG_NAME)
        with _journal(tmp_path) as journal:
            journal.open()
            journal.record_done("d1", RESULTS)
        with open(path, "a") as fh:
            fh.write("not a journal line\n")
        with _journal(tmp_path) as journal:
            journal.open()
        assert journal.torn_records == 1
        assert journal.completed == {"d1": RESULTS}


class TestLineFormat:
    def test_lines_reuse_the_run_journal_format(self, tmp_path):
        """Every line parses with the shared resilience parser."""
        path = str(tmp_path / REQUEST_LOG_NAME)
        with _journal(tmp_path) as journal:
            journal.open()
            journal.record_request("d1", BODY)
            journal.record_done("d1", RESULTS)
        with open(path) as fh:
            lines = fh.read().splitlines()
        assert len(lines) == 3  # begin, req, done
        records = [parse_journal_line(line) for line in lines]
        assert all(record is not None for record in records)
        assert [r["kind"] for r in records] == ["begin", "req", "done"]
        # And the round trip is byte-stable.
        for line, record in zip(lines, records):
            assert journal_line(record) == line

    def test_appends_are_durable(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.open()
            journal.record_request("d1", BODY)
            # Visible to an independent reader before close().
            raw = open(str(tmp_path / REQUEST_LOG_NAME)).read()
            assert '"req"' in raw
        assert os.path.getsize(str(tmp_path / REQUEST_LOG_NAME)) > 0
