"""ProfilingService: validation, dedup, recovery, breaker fallback.

Everything here runs in-process — the service deliberately owns the
whole robustness surface without an event loop, so these tests are
plain function calls against real shard caches in a tmpdir.
"""

import json

import pytest

from repro.serve.config import ServeConfig
from repro.serve.core import (MAX_BLOCKS_PER_REQUEST, ProfilingService,
                              RequestError, canonical_results_bytes,
                              parse_profile_request, request_digest)
from repro.serve.requestlog import REQUEST_LOG_NAME, read_done_records

ADD = "addq %rax, %rbx"
MUL = "imulq %rcx, %rdx\naddq %rax, %rbx"
BAD = "bogus %zz"


def _config(tmp_path, name="state", **kw):
    kw.setdefault("jobs", 1)
    return ServeConfig(socket=str(tmp_path / "s.sock"),
                       state_dir=str(tmp_path / name), **kw)


def _request(config, blocks, uarch="haswell", seed=0):
    return parse_profile_request({"blocks": blocks, "uarch": uarch,
                                  "seed": seed}, config)


def _service(config, **kw):
    service = ProfilingService(config, **kw)
    service.start()
    return service


# --- picklable failing worker (pool imports this module by reference)

def worker_raises(descriptor, config, index, records):
    raise RuntimeError("injected worker exception")


class TestValidation:
    def test_defaults_applied(self, serve_config):
        request = parse_profile_request({"blocks": [ADD]}, serve_config)
        assert request.uarch == "haswell"
        assert request.seed == 0
        assert request.client == "default"
        assert request.deadline_ms == serve_config.deadline_ms
        assert request.digest == request_digest("haswell", 0, [ADD])

    @pytest.mark.parametrize("payload,status", [
        ([], 400),                                   # not an object
        ({"blocks": []}, 400),
        ({"blocks": "addq"}, 400),
        ({"blocks": [7]}, 400),
        ({"blocks": [ADD] * (MAX_BLOCKS_PER_REQUEST + 1)}, 413),
        ({"blocks": ["x" * 70_000]}, 413),
        ({"blocks": [ADD], "uarch": "zen4"}, 400),
        ({"blocks": [ADD], "seed": True}, 400),
        ({"blocks": [ADD], "seed": "0"}, 400),
        ({"blocks": [ADD], "client": "c" * 200}, 400),
        ({"blocks": [ADD], "deadline_ms": -1}, 400),
    ])
    def test_rejections_carry_http_status(self, serve_config, payload,
                                          status):
        with pytest.raises(RequestError) as excinfo:
            parse_profile_request(payload, serve_config)
        assert excinfo.value.status == status

    def test_digest_is_order_and_boundary_sensitive(self):
        base = request_digest("haswell", 0, ["ab", "c"])
        assert request_digest("haswell", 0, ["a", "bc"]) != base
        assert request_digest("haswell", 0, ["c", "ab"]) != base
        assert request_digest("skylake", 0, ["ab", "c"]) != base
        assert request_digest("haswell", 1, ["ab", "c"]) != base
        assert request_digest("haswell", 0, ["ab", "c"]) == base


class TestExecute:
    def test_results_are_ordered_and_per_block(self, tmp_path):
        service = _service(_config(tmp_path))
        request = _request(service.config, [ADD, BAD, MUL])
        (results,), stats = service.execute([request])
        assert [r["status"] for r in results] == \
            ["ok", "parse_error", "ok"]
        assert results[0]["throughput"] > 0
        assert "bogus" in results[1]["detail"]
        assert stats["shards"] == 2  # the bad block never sharded
        service.close()

    def test_duplicate_blocks_profile_once(self, tmp_path):
        service = _service(_config(tmp_path))
        a = _request(service.config, [ADD, MUL])
        b = _request(service.config, [MUL, ADD, MUL])
        (ra, rb), stats = service.execute([a, b])
        assert stats["shards"] == 2  # two distinct texts in the batch
        assert ra[0] == rb[1]  # same text, same entry
        assert ra[1] == rb[0] == rb[2]
        service.close()

    def test_shared_cache_dedups_across_requests(self, tmp_path):
        service = _service(_config(tmp_path))
        first = _request(service.config, [ADD, MUL])
        (r1,), _ = service.execute([first])
        stats = {}
        second = _request(service.config, [MUL, ADD])
        (r2,), stats = service.execute([second])
        assert stats["cache_hits"] == 2  # both blocks already cached
        assert r2 == [r1[1], r1[0]]
        service.close()

    def test_reexecution_is_byte_identical_across_services(self,
                                                           tmp_path):
        blocks = [ADD, MUL, BAD]
        one = _service(_config(tmp_path, "one"))
        (r1,), _ = one.execute([_request(one.config, blocks)])
        one.close()
        two = _service(_config(tmp_path, "two"))
        (r2,), _ = two.execute([_request(two.config, blocks)])
        two.close()
        assert canonical_results_bytes(r1) == \
            canonical_results_bytes(r2)

    def test_memo_answers_identical_requests(self, tmp_path):
        service = _service(_config(tmp_path))
        request = _request(service.config, [ADD])
        assert service.lookup_memo(request) is None
        (results,), _ = service.execute([request])
        assert service.lookup_memo(request) == results
        service.close()
        # The memo survives a restart: it is read back from the journal.
        fresh = _service(_config(tmp_path))
        assert fresh.lookup_memo(
            _request(fresh.config, [ADD])) == results
        fresh.close()


class TestRecovery:
    def test_pending_requests_replay_byte_identically(self, tmp_path):
        blocks = [ADD, MUL]
        # Baseline: an uninterrupted service in its own state dir.
        clean = _service(_config(tmp_path, "clean"))
        request = _request(clean.config, blocks)
        (baseline,), _ = clean.execute([request])
        clean.close()

        # Crash shape: a req record with no done — exactly what a
        # SIGKILLed daemon leaves after admitting but before answering.
        crashed = _service(_config(tmp_path, "crashed"))
        crashed.journal.record_request(request.digest, request.body())
        crashed.close()

        recovering = _service(_config(tmp_path, "crashed"))
        assert request.digest in recovering.recovered
        assert recovering.recover() == 1
        assert recovering.journal.pending == {}
        recovering.close()

        done = read_done_records(
            str(tmp_path / "crashed" / REQUEST_LOG_NAME))
        replayed = dict(done)[request.digest]
        assert canonical_results_bytes(replayed) == \
            canonical_results_bytes(baseline)

    def test_unreplayable_body_is_dropped_not_looped(self, tmp_path):
        crashed = _service(_config(tmp_path))
        crashed.journal.record_request("dbad", {"blocks": []})
        crashed.close()
        recovering = _service(_config(tmp_path))
        assert recovering.recover() == 0
        assert recovering.journal.pending == {}
        recovering.close()
        # A second restart does not see it again.
        again = _service(_config(tmp_path))
        assert again.recovered == {}
        again.close()


class TestBreakerFallback:
    def test_scalar_fallback_after_trip_is_byte_identical(self,
                                                          tmp_path):
        """A misbehaving pool trips the breaker; results never change.

        The injected worker raises on every shard, so each pooled
        batch is rescued serially (correct bytes, ``retried`` > 0 =
        worker trouble).  After ``breaker_threshold`` troubled batches
        the breaker opens and the next batch runs with ``jobs=1`` —
        the pool (and the failing worker_fn) is never consulted.
        """
        config = _config(tmp_path, "flaky", jobs=2,
                         breaker_threshold=2, breaker_cooldown_s=600.0)
        flaky = _service(config, worker_fn=worker_raises)
        # Two fresh blocks per batch: a single pending shard would run
        # in-process and never engage the (failing) pool.
        batches = [[f"addq ${i}, %rax", f"imulq ${i}, %rcx"]
                   for i in range(3)]
        outputs = []
        for i, blocks in enumerate(batches):
            stats = {}
            (results,), stats = flaky.execute(
                [_request(config, blocks)])
            outputs.append(results)
            if i < 2:
                assert stats["retried"] == 2  # pool tried and failed
            else:
                # Breaker open: scalar path, no pool, no rescue —
                # and the scalar success does NOT close the breaker
                # (only a half-open pool probe may).
                assert flaky.breaker.state == "open"
                assert stats["retried"] == 0
        assert flaky.breaker.state == "open"
        flaky.close()

        clean = _service(_config(tmp_path, "clean"))
        for blocks, flaky_results in zip(batches, outputs):
            (clean_results,), _ = clean.execute(
                [_request(clean.config, blocks)])
            assert canonical_results_bytes(flaky_results) == \
                canonical_results_bytes(clean_results)
        clean.close()


class TestAssembly:
    def test_missing_throughput_reads_drop_reason(self, tmp_path):
        service = _service(_config(tmp_path))
        request = _request(service.config, [ADD])
        block_id = 0
        results = service._assemble(
            request, {ADD: block_id}, {}, {block_id: "step_budget"},
            {})
        assert results == [{"status": "dropped",
                            "reason": "step_budget"}]
        service.close()

    def test_health_shape(self, tmp_path):
        service = _service(_config(tmp_path))
        health = service.health(queue_depth=2, draining=False)
        assert health["status"] == "ok"
        assert health["breaker"] == "closed"
        assert health["queue_depth"] == 2
        assert json.dumps(health)  # JSON-serializable as a whole
        assert service.health(draining=True)["status"] == "draining"
        service.close()
