"""Differential block-plan suite: compilation invisible in the bytes.

Block-compiled execution plans (``repro.runtime.plan``) promise the
same contract as the simulation-core fast path: *bit-for-bit*
identical profiles, only produced faster.  The same corpora are
profiled with plans forced on and forced off — serially and through
the 2-worker pool (via ``REPRO_NO_BLOCKPLAN``, which workers inherit)
— on every microarchitecture, and compared after JSON serialisation.

The informational ``blockplan_compiled`` tally is deliberately
*excluded* from the comparison payload (it reports that plans were
active, so it legitimately differs between modes) and separately
pinned to never leak into accepted/dropped accounting.
"""

import json

import pytest

from repro.corpus.dataset import build_application
from repro.eval.validation import profile_corpus_detailed
from repro.parallel import profile_corpus_sharded
from repro.runtime import blockplan
from repro.simcore import config as simcore

UARCHES = ("ivybridge", "haswell", "skylake")


def _payload(profile) -> str:
    """Canonical bytes of a profile: order-sensitive on purpose."""
    return json.dumps({"throughputs": profile.throughputs,
                       "funnel": profile.funnel})


@pytest.mark.parametrize("uarch", UARCHES)
def test_blockplan_bit_identical_serial_and_pool(uarch, monkeypatch):
    corpus = build_application("llvm", count=18, seed=5)
    monkeypatch.setenv("REPRO_NO_BLOCKPLAN", "1")
    with blockplan.forced(False):
        interpreted = profile_corpus_detailed(corpus, uarch, seed=5)
        pool_off = profile_corpus_sharded(corpus, uarch, seed=5,
                                          jobs=2, shard_size=8)
    monkeypatch.delenv("REPRO_NO_BLOCKPLAN")
    with blockplan.forced(True):
        compiled = profile_corpus_detailed(corpus, uarch, seed=5)
        pool_on = profile_corpus_sharded(corpus, uarch, seed=5,
                                         jobs=2, shard_size=8)
    assert _payload(interpreted) == _payload(compiled) \
        == _payload(pool_off) == _payload(pool_on)
    assert interpreted.funnel["dropped"] == compiled.funnel["dropped"]
    # The informational tally never counts into the funnel: with
    # plans off it is absent, and either way accepted + dropped
    # still covers every block.
    assert "blockplan_compiled" not in interpreted.info
    assert "blockplan_compiled" not in pool_off.info
    assert compiled.info.get("blockplan_compiled", 0) > 0
    for profile in (interpreted, compiled, pool_off, pool_on):
        assert profile.funnel["accepted"] \
            + sum(profile.funnel["dropped"].values()) \
            == profile.funnel["total"]


@pytest.mark.parametrize("uarch", UARCHES)
def test_vector_corpus_identical(uarch):
    """Vector-heavy blocks (and the Ivy Bridge AVX2 drop path) too."""
    corpus = build_application("openblas", count=16, seed=9)
    with blockplan.forced(False):
        interpreted = profile_corpus_detailed(corpus, uarch, seed=9)
    with blockplan.forced(True):
        compiled = profile_corpus_detailed(corpus, uarch, seed=9)
    assert _payload(interpreted) == _payload(compiled)


def test_blockplan_identical_with_fastpath_off():
    """Plans are orthogonal to the simcore fast path: with full
    simulation forced, flipping plans still changes no byte."""
    corpus = build_application("gzip", count=10, seed=3)
    with simcore.forced(False):
        with blockplan.forced(False):
            interpreted = profile_corpus_detailed(corpus, "haswell",
                                                  seed=3)
        with blockplan.forced(True):
            compiled = profile_corpus_detailed(corpus, "haswell",
                                               seed=3)
    assert _payload(interpreted) == _payload(compiled)


def test_cli_flag_exports_env(monkeypatch, tmp_path, capsys):
    """``--no-blockplan`` exports the env var so workers inherit it."""
    from repro.cli import main
    import os
    monkeypatch.delenv("REPRO_NO_BLOCKPLAN", raising=False)
    block = tmp_path / "block.s"
    block.write_text("add %rax, %rbx\n")
    assert main(["profile", str(block), "--no-blockplan"]) == 0
    assert os.environ.get("REPRO_NO_BLOCKPLAN") == "1"
    # Plain pop, not monkeypatch.delenv: the CLI set this var *during*
    # the test, so delenv here would record "1" as the original value
    # and leak it back into the environment at teardown.
    os.environ.pop("REPRO_NO_BLOCKPLAN", None)
    assert main(["profile", str(block)]) == 0
    assert "REPRO_NO_BLOCKPLAN" not in os.environ
    out = capsys.readouterr().out
    assert out.count("throughput:") == 2
