"""Cache-key edge cases: the fast path's caches can never go stale.

Three caches back the fast path — the parse intern table (keyed by the
raw stripped source line), the per-``Decomposer`` uop cache (keyed by
``(instruction, divider class)`` on a per-machine-instance dict), and
the per-profiler dedup memo (keyed by canonical block text).  Each
test here is a way one of them *could* serve a wrong answer if its key
were sloppier, pinned so it never does.
"""

import json

from repro.isa.parser import parse_instruction
from repro.profiler.harness import BasicBlockProfiler
from repro.simcore import config as simcore
from repro.uarch.machine import Machine
from repro.uarch.uops import Decomposer


def test_att_and_intel_spellings_do_not_collide():
    """Same semantics, different text: distinct intern entries that
    parse to *equal* instructions — never one entry shadowing both."""
    with simcore.forced(True):
        att = parse_instruction("add %rax, %rbx")
        intel = parse_instruction("add rbx, rax")
    assert att == intel
    assert att is not intel  # separate cache entries by raw line
    assert hash(att) == hash(intel)


def test_interning_returns_shared_object_only_when_enabled():
    line = "imul %rcx, %rdx"
    with simcore.forced(True):
        a = parse_instruction(line)
        b = parse_instruction("  " + line + "  ")  # whitespace folded
    assert a is b
    with simcore.forced(False):
        c = parse_instruction(line)
        d = parse_instruction(line)
    assert c is not d
    assert a == c == d


def test_immediate_only_differences_get_distinct_entries():
    with simcore.forced(True):
        one = parse_instruction("add $1, %rax")
        two = parse_instruction("add $2, %rax")
        hex_two = parse_instruction("add $0x2, %rax")
    assert one != two
    assert hash(one) != hash(two)
    # Different spellings of the same immediate are separate entries
    # (keyed by raw text) but equal values.
    assert hex_two == two and hex_two is not two


def test_parse_errors_propagate_uncached():
    import pytest
    from repro.errors import AsmSyntaxError
    with simcore.forced(True):
        with pytest.raises(AsmSyntaxError):
            parse_instruction("notarealmnemonic %rax")
        with pytest.raises(AsmSyntaxError):  # still raises on retry
            parse_instruction("notarealmnemonic %rax")


def test_decomposer_cache_is_per_instance():
    """A mutated machine config must never see another's cache."""
    m1 = Machine("haswell", seed=0)
    m2 = Machine("skylake", seed=0)
    assert m1.decomposer._cache is not m2.decomposer._cache
    with simcore.forced(True):
        instr = parse_instruction("xor %eax, %eax")
    # The *same interned object* decomposed under different configs:
    # a global keyed-by-instruction cache would conflate these.
    strict = Decomposer(m1.desc, m1.table, m1.div_table,
                        recognize_zero_idioms=True)
    naive = Decomposer(m1.desc, m1.table, m1.div_table,
                       recognize_zero_idioms=False)
    assert strict.decompose(instr).is_zero_idiom
    assert not naive.decompose(instr).is_zero_idiom
    # Warm one cache, re-query the other: still config-correct.
    assert strict.decompose(instr).is_zero_idiom
    assert not naive.decompose(instr).is_zero_idiom


def test_dedup_memo_is_per_profiler():
    """Dedup is keyed by text *within one machine*: profiling the same
    text on another uarch must re-simulate, not reuse."""
    text = "add %rax, %rbx\nimul %rcx, %rbx"
    with simcore.forced(True):
        haswell = BasicBlockProfiler(Machine("haswell", seed=0))
        skylake = BasicBlockProfiler(Machine("skylake", seed=0))
        a = haswell.profile(text)
        b = skylake.profile(text)
    assert a is not b
    assert a.uarch == "haswell" and b.uarch == "skylake"


def test_cached_instruction_hash_is_stable():
    with simcore.forced(True):
        instr = parse_instruction("add %rax, %rbx")
    first = hash(instr)
    assert hash(instr) == first  # cached value, not recomputed wrong
    clone = parse_instruction("add rbx, rax")
    assert hash(clone) == first


def test_shard_cache_round_trips_info(tmp_path):
    """The informational tally survives the v3 shard cache."""
    from repro.corpus.dataset import build_application
    from repro.eval.validation import CorpusProfile
    from repro.parallel import ShardCache, shard_corpus

    corpus = build_application("llvm", count=4, seed=1)
    shard = shard_corpus(corpus, shard_size=4)[0]
    profile = CorpusProfile(
        throughputs={r.block_id: 1.0 for r in shard.records},
        funnel={"total": 4, "accepted": 4, "dropped": {}},
        info={"fastpath_extrapolated": 3})
    cache = ShardCache(str(tmp_path))
    cache.store(shard, profile)
    loaded = cache.load(shard)
    assert loaded.info == {"fastpath_extrapolated": 3}
    assert loaded.funnel == profile.funnel
    # Old-format entries (no "info" key) load as empty info, not None.
    path = cache.path_for(shard)
    doc = json.load(open(path))
    del doc["info"]
    with open(path, "w") as fh:
        json.dump(doc, fh)
    assert cache.load(shard).info == {}


def test_run_report_funnel_info_is_informational_only():
    """The report's fastpath bucket never shifts accepted/dropped."""
    from repro.telemetry.report import funnel_from_counters, \
        render_summary

    counters = {"profiler.blocks_total": 10,
                "profiler.blocks_accepted": 8,
                "profiler.failure.segfault": 2,
                "profiler.fastpath_extrapolated": 7}
    funnel = funnel_from_counters(counters)
    assert funnel["total"] == 10
    assert funnel["accepted"] + sum(funnel["dropped"].values()) == 10
    assert funnel["info"] == {"fastpath_extrapolated": 7}
    text = render_summary({"report": "x", "generated_at": "now",
                           "funnel": funnel})
    assert "info: fastpath_extrapolated" in text
    # Without the counter the bucket vanishes entirely.
    assert "info" not in funnel_from_counters(
        {"profiler.blocks_total": 1, "profiler.blocks_accepted": 1})
