"""Differential fast-path suite: optimisations invisible in the bytes.

The simulation-core fast path (steady-state extrapolation, combined
two-factor runs, decode/parse caching, corpus-level dedup) promises
*bit-for-bit* identical output to full simulation.  This suite holds
it to that: the same corpora are profiled with the fast path forced on
and forced off — serially and through the 2-worker pool — on every
microarchitecture, and the results are compared byte-for-byte after
JSON serialisation: throughputs (values *and* insertion order), the
accept/drop funnel, and per-unroll counter tuples.

The informational ``fastpath_extrapolated`` tally is deliberately
*excluded* from the comparison payload (it reports how often the fast
path fired, so it legitimately differs between modes) and separately
pinned to never leak into accepted/dropped accounting.
"""

import json

import pytest

from repro.corpus.dataset import build_application
from repro.eval.validation import profile_corpus_detailed
from repro.parallel import profile_corpus_sharded
from repro.profiler.harness import BasicBlockProfiler, ProfilerConfig
from repro.simcore import config as simcore
from repro.uarch.machine import Machine

UARCHES = ("ivybridge", "haswell", "skylake")


def _payload(profile) -> str:
    """Canonical bytes of a profile: order-sensitive on purpose."""
    return json.dumps({"throughputs": profile.throughputs,
                       "funnel": profile.funnel})


def _fingerprint(result):
    """Every observable field of one block's profile."""
    return (
        result.ok,
        None if result.failure is None else result.failure.value,
        result.throughput,
        tuple((m.unroll, m.cycles, m.clean_runs, m.total_runs,
               m.l1d_read_misses, m.l1d_write_misses, m.l1i_misses,
               m.misaligned_refs) for m in result.measurements),
    )


@pytest.mark.parametrize("uarch", UARCHES)
def test_fastpath_bit_identical_serial_and_pool(uarch):
    corpus = build_application("llvm", count=18, seed=5)
    with simcore.forced(False):
        slow = profile_corpus_detailed(corpus, uarch, seed=5)
    with simcore.forced(True):
        fast = profile_corpus_detailed(corpus, uarch, seed=5)
        pool = profile_corpus_sharded(corpus, uarch, seed=5,
                                      jobs=2, shard_size=8)
    assert _payload(slow) == _payload(fast) == _payload(pool)
    assert slow.funnel["dropped"] == fast.funnel["dropped"]
    # The informational tally never counts into the funnel: with the
    # fast path off it never fires, and either way accepted + dropped
    # still covers every block.  (Other layers' info rows — e.g.
    # blockplan_compiled — may legitimately be present in both modes.)
    assert "fastpath_extrapolated" not in slow.info
    for profile in (slow, fast, pool):
        assert profile.funnel["accepted"] \
            + sum(profile.funnel["dropped"].values()) \
            == profile.funnel["total"]


@pytest.mark.parametrize("uarch", UARCHES)
def test_vector_corpus_identical(uarch):
    """Vector-heavy blocks (and the Ivy Bridge AVX2 drop path) too."""
    corpus = build_application("openblas", count=16, seed=9)
    with simcore.forced(False):
        slow = profile_corpus_detailed(corpus, uarch, seed=9)
    with simcore.forced(True):
        fast = profile_corpus_detailed(corpus, uarch, seed=9)
    assert _payload(slow) == _payload(fast)


def test_paper_unroll_factors_identical_per_measurement():
    """At the paper's unroll 100/200 every per-unroll counter agrees.

    This exercises the layers the small-unroll tests barely touch:
    annotation early-exit with remainder replay, scheduler fixed-point
    extrapolation, and the combined two-factor run with its u1
    checkpoint certification.
    """
    import os
    path = os.path.join(os.path.dirname(__file__), "..", "data",
                        "golden_corpus.json")
    with open(path) as fh:
        texts = [b["text"] for b in json.load(fh)["blocks"]]
    config = ProfilerConfig(base_factor=100)

    def run(fast):
        with simcore.forced(fast):
            profiler = BasicBlockProfiler(Machine("haswell", seed=0),
                                          config)
            return [_fingerprint(profiler.profile(t)) for t in texts]

    assert run(True) == run(False)


def test_dedup_returns_identical_results_for_repeats():
    """Corpus-level dedup: repeated text -> one simulation, same bytes."""
    text = "add %rax, %rbx\nimul %rcx, %rbx"
    with simcore.forced(True):
        profiler = BasicBlockProfiler(Machine("haswell", seed=0))
        first = profiler.profile(text)
        second = profiler.profile(text)
    assert second is first  # memoised, not re-simulated
    with simcore.forced(False):
        profiler = BasicBlockProfiler(Machine("haswell", seed=0))
        slow_a = profiler.profile(text)
        slow_b = profiler.profile(text)
    assert slow_a is not slow_b
    assert _fingerprint(first) == _fingerprint(slow_a) \
        == _fingerprint(slow_b)


def test_env_var_disables_fastpath(monkeypatch):
    monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
    simcore.set_enabled(None)  # defer to the environment
    try:
        assert not simcore.enabled()
        monkeypatch.setenv("REPRO_NO_FASTPATH", "0")
        assert simcore.enabled()
        monkeypatch.delenv("REPRO_NO_FASTPATH")
        assert simcore.enabled()
    finally:
        simcore.set_enabled(None)


def test_cli_flag_exports_env(monkeypatch, tmp_path, capsys):
    """``--no-fastpath`` exports the env var so workers inherit it."""
    from repro.cli import main
    monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    block = tmp_path / "block.s"
    block.write_text("add %rax, %rbx\n")
    import os
    assert main(["profile", str(block), "--no-fastpath"]) == 0
    assert os.environ.get("REPRO_NO_FASTPATH") == "1"
    # Plain pop, not monkeypatch.delenv: the CLI set this var *during*
    # the test, so delenv here would record "1" as the original value
    # and leak it back into the environment at teardown.
    os.environ.pop("REPRO_NO_FASTPATH", None)
    assert main(["profile", str(block)]) == 0
    assert "REPRO_NO_FASTPATH" not in os.environ
    out = capsys.readouterr().out
    assert out.count("throughput:") == 2
