"""Isolation for the process-wide telemetry hub."""

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def _isolate_telemetry():
    telemetry.reset()
    yield
    telemetry.reset()
