"""The perf-regression gate: floors, baselines, CLI exit codes."""

import json
import os

import pytest

from repro.cli import main
from repro.telemetry import benchgate

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", ".."))

#: Every committed benchmark result, auto-discovered so a newly added
#: BENCH_*.json is gated from the commit that introduces it — no
#: hand-maintained list to forget updating (BENCH_lanes.json used to
#: slip through exactly that way).
COMMITTED = benchgate.discover_bench_files(REPO_ROOT)

#: Files every checkout of this repo must carry (self-mode floors).
EXPECTED_COMMITTED = ("BENCH_simcore.json", "BENCH_blockplan.json",
                      "BENCH_windows.json", "BENCH_lanes.json",
                      "BENCH_triage.json")


def _write(path, doc):
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return str(path)


class TestHeadlineLeaves:
    def test_nested_discovery(self):
        doc = {"floor": 2.0, "a": {"speedup": 3.0},
               "b": {"c": {"speedup": 4.0}},
               "throughput_kblocks_per_s": 120.0,
               "noise": {"profiles": 9}}
        leaves = dict(benchgate.headline_leaves(doc))
        assert leaves == {"a.speedup": 3.0, "b.c.speedup": 4.0,
                          "throughput_kblocks_per_s": 120.0}


class TestSelfMode:
    def test_best_leaf_vs_floor_passes(self):
        checks = benchgate.check_file(
            "x.json", {"floor": 2.0, "slow": {"speedup": 1.2},
                       "fast": {"speedup": 2.4}},
            baseline=None, tolerance=0.1)
        (check,) = checks
        assert check["mode"] == "floor"
        assert check["metric"] == "fast.speedup"
        assert check["ok"]

    def test_below_floor_fails(self):
        (check,) = benchgate.check_file(
            "x.json", {"floor": 2.0, "run": {"speedup": 1.5}},
            baseline=None, tolerance=0.1)
        assert not check["ok"]

    def test_no_headline_metrics_noted(self):
        (check,) = benchgate.check_file(
            "x.json", {"numbers": 3}, baseline=None, tolerance=0.1)
        assert check["ok"] and "note" in check


class TestBaselineMode:
    BASE = {"floor": 2.0, "unique": {"speedup": 3.0},
            "replicated": {"speedup": 27.0}}

    def test_fifteen_percent_regression_fails(self):
        current = {"floor": 2.0, "unique": {"speedup": 3.0 * 0.85},
                   "replicated": {"speedup": 27.0}}
        checks = benchgate.check_file("x.json", current, self.BASE,
                                      tolerance=0.10)
        by_metric = {c["metric"]: c for c in checks
                     if c["mode"] == "baseline"}
        assert not by_metric["unique.speedup"]["ok"]
        assert by_metric["replicated.speedup"]["ok"]

    def test_within_tolerance_passes(self):
        current = {"floor": 2.0, "unique": {"speedup": 3.0 * 0.95},
                   "replicated": {"speedup": 27.0}}
        checks = benchgate.check_file("x.json", current, self.BASE,
                                      tolerance=0.10)
        assert all(c["ok"] for c in checks)


class TestRunGate:
    def test_discovery_finds_every_expected_file(self):
        names = {os.path.basename(p) for p in COMMITTED}
        missing = set(EXPECTED_COMMITTED) - names
        assert not missing, f"committed BENCH files missing: {missing}"

    def test_committed_files_pass(self):
        assert len(COMMITTED) >= len(EXPECTED_COMMITTED)
        report = benchgate.run_gate(COMMITTED, tolerance=0.15)
        assert report["ok"], benchgate.render_gate(report)

    def test_unreadable_file_is_an_error_not_a_crash(self, tmp_path):
        bad = _write(tmp_path / "BENCH_bad.json", None)
        with open(bad, "w") as fh:
            fh.write("{nope")
        report = benchgate.run_gate([bad])
        assert report["errors"]
        assert not report["ok"]  # nothing checked -> fail closed


class TestCli:
    def test_pass_exit_zero(self, tmp_path):
        good = _write(tmp_path / "BENCH_g.json",
                      {"floor": 2.0, "run": {"speedup": 2.5}})
        assert main(["bench", "check", good]) == 0

    def test_injected_regression_exit_one(self, tmp_path, capsys):
        """Acceptance: a synthetic >=15% regression fails the gate."""
        committed = json.load(open(COMMITTED[0])) \
            if os.path.exists(COMMITTED[0]) else \
            {"floor": 3.0, "unique": {"speedup": 3.1}}
        regressed = json.loads(json.dumps(committed))
        for section in regressed.values():
            if isinstance(section, dict) and "speedup" in section:
                section["speedup"] *= 0.80  # 20% drop across the board

        baseline_dir = tmp_path / "base"
        baseline_dir.mkdir()
        _write(baseline_dir / "BENCH_r.json", committed)
        bad = _write(tmp_path / "BENCH_r.json", regressed)
        assert main(["bench", "check", bad, "--tolerance", "0.15",
                     "--against", str(baseline_dir)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        good = _write(tmp_path / "BENCH_g.json",
                      {"floor": 1.0, "run": {"speedup": 1.5}})
        assert main(["bench", "check", good, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["checks"][0]["metric"] == "run.speedup"

    def test_no_files_exit_two(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "check"]) == 2
