"""Unified cache telemetry: one protocol, one report section."""

import pytest

from repro import telemetry
from repro.telemetry import cachestats
from repro.telemetry.cachestats import CacheStats

#: The five caches the unified section must always cover.
FIVE = {"shard", "blockplan", "decode", "dedup", "page"}


class TestCacheStats:
    def test_hit_rate_and_lookups(self):
        stats = CacheStats("x", hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == 0.75
        assert CacheStats("x").hit_rate is None

    def test_as_dict(self):
        d = CacheStats("x", hits=1, misses=2, evictions=3, size=4,
                       capacity=5).as_dict()
        assert d == {"hits": 1, "misses": 2, "evictions": 3,
                     "size": 4, "capacity": 5,
                     "hit_rate": pytest.approx(0.3333)}

    def test_merge_counter_stats(self):
        base = CacheStats("page", hits=10, misses=5, size=1)
        merged = cachestats.merge_counter_stats(base, {
            "cache.page.hits": 7, "cache.page.evictions": 2,
            "cache.other.hits": 99,
        })
        assert (merged.hits, merged.misses, merged.evictions) \
            == (17, 5, 2)
        assert merged.size == 1

    def test_counter_name_convention(self):
        assert cachestats.counter_name("dedup", "hits") \
            == "cache.dedup.hits"


class TestProviders:
    def test_register_and_snapshot_sorted(self):
        cachestats.register_provider(
            "zz_test", lambda: CacheStats("zz_test", hits=1))
        try:
            names = [s.name for s in cachestats.snapshot()]
            assert names == sorted(names)
            assert "zz_test" in names
        finally:
            cachestats._PROVIDERS.pop("zz_test", None)

    def test_registry_stats_reads_counters(self):
        telemetry.enable()
        telemetry.count("cache.demo.hits", 4)
        telemetry.count("cache.demo.misses", 1)
        stats = cachestats.registry_stats("demo", size=9, capacity=16)
        assert (stats.hits, stats.misses) == (4, 1)
        assert (stats.size, stats.capacity) == (9, 16)


class TestFiveCachesInReport:
    def test_all_five_present(self):
        # Importing the instrumented layers registers the providers.
        import repro.isa.parser  # noqa: F401
        import repro.parallel.shard_cache  # noqa: F401
        import repro.profiler.harness  # noqa: F401
        import repro.runtime.memory  # noqa: F401
        import repro.runtime.plan  # noqa: F401
        report = telemetry.build_run_report(telemetry.registry(),
                                            name="caches")
        assert FIVE <= set(report["caches"])
        for stats in report["caches"].values():
            assert {"hits", "misses", "evictions", "size",
                    "capacity", "hit_rate"} <= set(stats)

    def test_decode_provider_tracks_parser(self):
        from repro.isa.parser import decode_cache_stats, \
            parse_instruction
        from repro.simcore import config as simcore
        with simcore.forced(True):
            before = decode_cache_stats()
            parse_instruction("addq %rax, %rbx")
            parse_instruction("addq %rax, %rbx")
            after = decode_cache_stats()
        assert after.lookups >= before.lookups + 2
        assert after.hits >= before.hits + 1

    def test_stitched_counters_fill_missing_provider(self):
        telemetry.enable()
        telemetry.count("cache.phantom.hits", 5)
        telemetry.count("cache.phantom.misses", 5)
        report = telemetry.build_run_report(telemetry.registry(),
                                            name="stitched")
        assert report["caches"]["phantom"]["hits"] == 5
        assert report["caches"]["phantom"]["hit_rate"] == 0.5

    def test_page_cache_drained_by_harness(self):
        from repro.corpus.dataset import build_application
        from repro.eval.validation import profile_corpus_detailed
        from repro.runtime import blockplan
        telemetry.enable()
        corpus = build_application("llvm", count=6, seed=3)
        # Page-cache stats only accrue on the block-plan fast path;
        # force it on so an ambient REPRO_NO_BLOCKPLAN can't starve
        # the counters.
        with blockplan.forced(True):
            profile_corpus_detailed(corpus, "haswell", seed=3)
        report = telemetry.build_run_report(telemetry.registry(),
                                            name="drained")
        page = report["caches"]["page"]
        dedup = report["caches"]["dedup"]
        assert page["hits"] + page["misses"] > 0
        assert dedup["misses"] > 0
