"""Tracer core: spans, sinks, enable/disable, NDJSON round-trip."""

import time

import pytest

from repro import telemetry
from repro.telemetry import MemorySink, NdjsonSink, read_ndjson
from repro.telemetry.core import _NOOP_SPAN


class TestLifecycle:
    def test_disabled_by_default(self):
        assert not telemetry.is_enabled()

    def test_enable_disable(self):
        telemetry.enable()
        assert telemetry.is_enabled()
        telemetry.disable()
        assert not telemetry.is_enabled()

    def test_disabled_calls_are_noops(self):
        telemetry.count("x")
        telemetry.observe("x", 1.0)
        telemetry.set_gauge("x", 1.0)
        telemetry.event("x")
        snap = telemetry.registry().snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}

    def test_disabled_span_is_shared_noop(self):
        assert telemetry.span("anything") is _NOOP_SPAN
        with telemetry.span("anything") as sp:
            sp.annotate(ignored=True)

    def test_reset_wipes_metrics(self):
        telemetry.enable()
        telemetry.count("x")
        telemetry.reset()
        assert not telemetry.is_enabled()
        assert telemetry.registry().snapshot()["counters"] == {}


class TestSpans:
    def test_span_records_wall_time(self):
        telemetry.enable()
        with telemetry.span("work") as sp:
            time.sleep(0.01)
        assert sp.duration_ms >= 10.0
        summary = telemetry.registry().histogram("span.work").summary()
        assert summary["count"] == 1
        assert summary["mean"] >= 10.0

    def test_span_nesting_depth_and_parent(self):
        sink = MemorySink()
        telemetry.enable(sink)
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        # inner closes (and is emitted) first
        inner, outer = sink.records
        assert inner["name"] == "inner"
        assert inner["depth"] == 1
        assert inner["parent"] == "outer"
        assert outer["name"] == "outer"
        assert outer["depth"] == 0
        assert outer["parent"] is None

    def test_span_annotate_attaches_attrs(self):
        sink = MemorySink()
        telemetry.enable(sink)
        with telemetry.span("stage", uarch="haswell") as sp:
            sp.annotate(blocks=7)
        record = sink.records[0]
        assert record["uarch"] == "haswell"
        assert record["blocks"] == 7

    def test_span_records_exceptions(self):
        sink = MemorySink()
        telemetry.enable(sink)
        with pytest.raises(ValueError):
            with telemetry.span("doomed"):
                raise ValueError("boom")
        assert sink.records[0]["error"] == "ValueError"

    def test_sibling_spans_share_depth(self):
        sink = MemorySink()
        telemetry.enable(sink)
        with telemetry.span("a"):
            pass
        with telemetry.span("b"):
            pass
        assert [r["depth"] for r in sink.records] == [0, 0]


class TestEvents:
    def test_event_fields_reach_sink(self):
        sink = MemorySink()
        telemetry.enable(sink)
        telemetry.event("cache.hit", path="/tmp/x", tag="main")
        record = sink.records[0]
        assert record["kind"] == "event"
        assert record["name"] == "cache.hit"
        assert record["path"] == "/tmp/x"
        assert record["ts"] > 0


class TestNdjson:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.ndjson")
        telemetry.enable(path)
        telemetry.event("first", n=1)
        with telemetry.span("timed", label="x"):
            telemetry.event("nested")
        telemetry.disable()  # flush + close

        records = read_ndjson(path)
        assert [r["name"] for r in records] == \
            ["first", "nested", "timed"]
        assert records[0]["n"] == 1
        span_rec = records[2]
        assert span_rec["kind"] == "span"
        assert span_rec["dur_ms"] >= 0
        assert span_rec["label"] == "x"
        # nested event carries no span linkage, but the span does
        assert span_rec["depth"] == 0

    def test_sink_borrows_open_stream(self, tmp_path):
        path = tmp_path / "stream.ndjson"
        with open(path, "w") as fh:
            telemetry.enable(NdjsonSink(fh))
            telemetry.event("x")
            telemetry.disable()  # must only flush, not close
            assert not fh.closed
        assert len(read_ndjson(str(path))) == 1


class TestOverhead:
    def test_disabled_primitives_are_cheap(self):
        """The no-op guard must stay far below profiling cost."""
        calls = 20_000
        start = time.perf_counter()
        for _ in range(calls):
            telemetry.count("noop")
            telemetry.observe("noop", 1.0)
        per_call_us = (time.perf_counter() - start) / (2 * calls) * 1e6
        # Profiling one block costs ~20ms; 5us per guard call keeps
        # even dozens of guards per block under 0.1% overhead.
        assert per_call_us < 5.0
