"""Telemetry threaded through the real pipeline.

The coverage contract: every block the harness sees lands in exactly
one funnel bucket, so accepted + dropped always equals the corpus
size — the paper's "no user intervention" claim, made checkable.
"""

import json
import os

import pytest

from repro import FailureReason, parse_block, telemetry
from repro.corpus import build_corpus
from repro.eval.pipeline import Experiment
from repro.profiler import BasicBlockProfiler
from repro.uarch import Machine

#: ~50 blocks at the paper's 358k-block full scale.
SMALL_SCALE = 0.0001


@pytest.fixture(scope="module")
def small_corpus():
    return build_corpus(scale=SMALL_SCALE, seed=7)


class TestProfileFunnel:
    def test_profile_many_accounts_for_every_block(self, small_corpus):
        telemetry.enable()
        profiler = BasicBlockProfiler(Machine("haswell"))
        results = profiler.profile_many(
            [record.block for record in small_corpus])

        assert len(results) == len(small_corpus) >= 20
        funnel = telemetry.funnel_from_counters(
            telemetry.registry().snapshot()["counters"])
        assert funnel["total"] == len(small_corpus)
        assert funnel["accepted"] == sum(1 for r in results if r.ok)
        assert funnel["accepted"] + sum(funnel["dropped"].values()) \
            == len(small_corpus)
        # dropped reasons mirror the per-result failures exactly
        by_reason = {}
        for result in results:
            if not result.ok:
                by_reason[result.failure.value] = \
                    by_reason.get(result.failure.value, 0) + 1
        assert funnel["dropped"] == by_reason

    def test_block_latency_histogram_fed(self, small_corpus):
        telemetry.enable()
        profiler = BasicBlockProfiler(Machine("haswell"))
        profiler.profile_many(
            [record.block for record in small_corpus][:10])
        summary = telemetry.registry() \
            .histogram("profiler.block_latency_ms").summary()
        assert summary["count"] == 10
        assert summary["p50"] > 0


class TestExperimentCache:
    @pytest.fixture(autouse=True)
    def _cache_dir(self, tmp_path, monkeypatch):
        self.cache = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE", str(self.cache))

    def test_miss_then_hit_with_funnel_round_trip(self):
        from repro.parallel import shard_corpus
        telemetry.enable()
        first = Experiment(scale=SMALL_SCALE, seed=7)
        measured = first.measured("haswell")
        shards = len(shard_corpus(first.corpus, first.shard_size))
        counters = telemetry.registry().snapshot()["counters"]
        assert counters["cache.misses"] == 1
        assert counters["cache.writes"] == shards  # one per shard
        assert counters.get("cache.hits", 0) == 0
        funnel = first.funnel("haswell")
        assert funnel["total"] == len(first.corpus)
        assert funnel["accepted"] == len(measured)

        # A fresh Experiment re-reads from disk: hit, same data,
        # same funnel (the breakdown survives the cache).
        second = Experiment(scale=SMALL_SCALE, seed=7)
        assert second.measured("haswell") == measured
        assert second.funnel("haswell") == funnel
        counters = telemetry.registry().snapshot()["counters"]
        assert counters["cache.hits"] == 1
        assert counters["parallel.shard_cache_hits"] == shards

    def test_cache_files_are_versioned_and_atomic(self):
        experiment = Experiment(scale=SMALL_SCALE, seed=7)
        experiment.measured("haswell")
        (name,) = os.listdir(self.cache)
        assert name == "measured_v3_main_haswell_7"
        entries = os.listdir(self.cache / name)
        # The run journal (crash-safe resume) is co-located with the
        # shard files.
        assert "journal.ndjson" in entries
        shard_files = [f for f in entries if f.startswith("shard_")]
        assert shard_files
        assert not any(f.endswith(".tmp") for f in entries)
        total = 0
        for shard_file in shard_files:
            with open(self.cache / name / shard_file) as fh:
                doc = json.load(fh)
            assert doc["version"] == 3
            assert doc["digest"] in shard_file
            total += doc["funnel"]["total"]
        assert total == len(experiment.corpus)

    def _rewrite_as_legacy(self, version: int):
        """Replace the v3 shard dir with a legacy monolithic file."""
        import shutil
        from repro.eval.pipeline import (_corpus_digest,
                                         _legacy_cache_path,
                                         _store_cache)
        from repro.eval.validation import CorpusProfile
        experiment = Experiment(scale=SMALL_SCALE, seed=7)
        measured = experiment.measured("haswell")
        funnel = experiment.funnel("haswell")
        shutil.rmtree(self.cache / "measured_v3_main_haswell_7")
        path = _legacy_cache_path("main", "haswell", 7,
                                  _corpus_digest(experiment.corpus))
        if version == 2:
            _store_cache(path, CorpusProfile(measured, funnel))
        else:
            with open(path, "w") as fh:
                json.dump({str(k): v for k, v in measured.items()}, fh)
        return measured, funnel

    def test_legacy_v2_cache_migrates_with_exact_funnel(self):
        measured, funnel = self._rewrite_as_legacy(version=2)
        fresh = Experiment(scale=SMALL_SCALE, seed=7)
        assert fresh.measured("haswell") == measured
        # Merge-on-load: the per-reason breakdown survives migration
        # in aggregate (the Table-I view is exact).
        assert fresh.funnel("haswell") == funnel
        assert os.path.isdir(self.cache / "measured_v3_main_haswell_7")

    def test_legacy_v1_cache_still_loads(self):
        measured, _ = self._rewrite_as_legacy(version=1)
        fresh = Experiment(scale=SMALL_SCALE, seed=7)
        assert fresh.measured("haswell") == measured
        # The per-reason breakdown is gone, but coverage still
        # accounts for every block.
        funnel = fresh.funnel("haswell")
        assert funnel["total"] == len(fresh.corpus)
        assert funnel["accepted"] == len(measured)
        dropped = funnel["dropped"]
        assert sum(dropped.values()) == funnel["total"] - \
            funnel["accepted"]
        if dropped:
            assert set(dropped) == {"unknown_pre_telemetry_cache"}


class TestRunReport:
    def test_validation_emits_complete_report(self, tmp_path,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_REPORT_DIR", str(tmp_path / "reports"))
        telemetry.enable()
        experiment = Experiment(scale=SMALL_SCALE, seed=7)
        experiment.validation("haswell")

        path = tmp_path / "reports" / "run_validation_haswell.json"
        assert path.exists()
        with open(path) as fh:
            report = json.load(fh)
        funnel = report["funnel"]
        assert funnel["accepted"] + sum(funnel["dropped"].values()) \
            == funnel["total"] == report["meta"]["corpus_size"]
        stage_names = {s["stage"] for s in report["stages"]}
        assert "experiment.measure" in stage_names
        assert "experiment.validate" in stage_names
        assert report["cache"]["misses"] == 1
        assert (tmp_path / "reports"
                / "run_validation_haswell.txt").exists()


class TestUnsupportedInstructions:
    """The rdtsc seed bug: unsupported mnemonics must degrade, not
    crash (uops.timing_class used to raise KeyError)."""

    def test_profiler_returns_unsupported(self):
        result = BasicBlockProfiler(Machine("haswell")) \
            .profile(parse_block("rdtsc"))
        assert not result.ok
        assert result.failure is FailureReason.UNSUPPORTED

    def test_models_return_error_prediction_and_count_it(self):
        from repro.models import simulator_models
        telemetry.enable()
        block = parse_block("ror $5, %r13\nrdtsc")
        for model in simulator_models():
            prediction = model.predict_safe(block, "haswell")
            assert not prediction.ok
            assert "rdtsc" in prediction.error
        counters = telemetry.registry().snapshot()["counters"]
        assert counters["models.unsupported_block"] \
            == len(simulator_models())
        assert counters["uops.unsupported_mnemonic"] \
            == len(simulator_models())
