"""Live monitor: heartbeat events, lenient tailing, `repro top`."""

import json
import os
import time

from repro import telemetry
from repro.telemetry import live
from repro.telemetry.live import Heartbeat, read_records, render_top


class TestReadRecords:
    def _write(self, path, lines):
        with open(path, "w") as fh:
            fh.write(lines)

    def test_round_trip_and_offsets(self, tmp_path):
        path = str(tmp_path / "t.ndjson")
        self._write(path, '{"a": 1}\n{"a": 2}\n')
        records, offset = read_records(path)
        assert [r["a"] for r in records] == [1, 2]
        with open(path, "a") as fh:
            fh.write('{"a": 3}\n')
        fresh, offset2 = read_records(path, offset)
        assert [r["a"] for r in fresh] == [3]
        assert offset2 > offset

    def test_torn_tail_retried_next_call(self, tmp_path):
        path = str(tmp_path / "t.ndjson")
        self._write(path, '{"a": 1}\n{"a": 2')  # no trailing newline
        records, offset = read_records(path)
        assert [r["a"] for r in records] == [1]
        with open(path, "a") as fh:
            fh.write('2}\n')
        fresh, _ = read_records(path, offset)
        assert [r["a"] for r in fresh] == [22]

    def test_undecodable_complete_line_skipped(self, tmp_path):
        path = str(tmp_path / "t.ndjson")
        self._write(path, '{"a": 1}\nnot json\n{"a": 3}\n')
        records, _ = read_records(path)
        assert [r["a"] for r in records] == [1, 3]

    def test_missing_file_reads_empty(self, tmp_path):
        records, offset = read_records(str(tmp_path / "nope"), 7)
        assert records == [] and offset == 7


class TestHeartbeat:
    def test_beat_emits_snapshot(self):
        sink = telemetry.MemorySink()
        telemetry.enable(sink)
        telemetry.count("profiler.blocks_total", 12)
        telemetry.count("profiler.blocks_accepted", 10)
        telemetry.count("cache.page.hits", 3)
        hb = Heartbeat(interval=60.0)
        hb._started = hb._last_beat = time.perf_counter()
        hb.beat()
        beats = [r for r in sink.records
                 if r.get("name") == "heartbeat"]
        assert len(beats) == 1
        beat = beats[0]
        assert beat["blocks_total"] == 12
        assert beat["blocks_accepted"] == 10
        assert beat["counters"]["cache.page.hits"] == 3
        assert "blocks_per_s" in beat and "uptime_s" in beat

    def test_disabled_hub_beats_nothing(self):
        hb = Heartbeat(interval=60.0)
        hb.beat()
        assert hb.beats == 0 or True  # no exception is the contract
        assert not telemetry.is_enabled()

    def test_thread_lifecycle(self):
        telemetry.enable(telemetry.MemorySink())
        with Heartbeat(interval=0.05) as hb:
            time.sleep(0.2)
        assert hb.beats >= 1


def _synthetic_trace():
    """A plausible mid-run trace: run.start, windows, heartbeat."""
    t0 = 1000.0
    return [
        {"kind": "event", "name": "run.start", "label": "main:haswell",
         "uarch": "haswell", "blocks": 128, "jobs": 4, "shards": 4,
         "window_size": 32, "ts": t0, "trace": "abc123", "seq": 1},
        {"kind": "span", "name": "worker.shard", "shard": 0,
         "dur_ms": 50.0, "ts": t0 + 1, "trace": "abc123", "seq": 2},
        {"kind": "event", "name": "worker.shard_summary", "shard": 0,
         "counters": {"cache.dedup.hits": 4, "cache.dedup.misses": 4,
                      "profiler.failure.segfault": 2},
         "ts": t0 + 1.1, "trace": "abc123", "seq": 3},
        {"kind": "event", "name": "window", "label": "main:haswell",
         "window": 0, "start": 0, "blocks": 32, "accepted": 30,
         "sampled": 30, "p50": 4.0, "p95": 9.0, "p99": 12.0,
         "mean": 5.0, "jitter": 2.0, "sim_rate": 200.0,
         "ts": t0 + 2, "trace": "abc123", "seq": 4},
        {"kind": "event", "name": "window", "label": "main:haswell",
         "window": 1, "start": 32, "blocks": 32, "accepted": 31,
         "sampled": 31, "p50": 4.0, "p95": 8.0, "p99": 11.0,
         "mean": 5.0, "jitter": 1.5, "sim_rate": 210.0,
         "ts": t0 + 4, "trace": "abc123", "seq": 5},
        {"kind": "event", "name": "heartbeat", "phase":
         "experiment.measure", "uptime_s": 4.2, "blocks_total": 64,
         "blocks_accepted": 61, "blocks_per_s": 15.2,
         "counters": {"cache.page.hits": 100, "cache.page.misses": 50,
                      "profiler.failure.segfault": 2},
         "ts": t0 + 4.2, "trace": "abc123", "seq": 6},
    ]


class TestRenderTop:
    def test_empty_trace_placeholder(self):
        assert "waiting" in render_top([])

    def test_renders_phase_progress_eta_and_caches(self):
        screen = render_top(_synthetic_trace())
        assert "trace abc123" in screen
        assert "phase: experiment.measure" in screen
        assert "64 seen, 61 accepted" in screen
        assert "run main:haswell: 64/128 blocks [running]" in screen
        assert "2 windows" in screen
        assert "sim_rate 210.00" in screen
        assert "eta" in screen
        assert "page 67%" in screen
        assert "segfault=2" in screen

    def test_run_end_marks_done(self):
        records = _synthetic_trace() + [
            {"kind": "event", "name": "run.end",
             "label": "main:haswell", "ts": 1010.0, "seq": 7}]
        assert "[done]" in render_top(records)

    def test_counters_fall_back_to_shard_summaries(self):
        records = [r for r in _synthetic_trace()
                   if r.get("name") != "heartbeat"]
        screen = render_top(records)
        assert "dedup 50%" in screen

    def test_renders_from_in_flight_ndjson(self, tmp_path):
        """Acceptance: `repro top` renders from a torn, in-flight
        trace file."""
        path = str(tmp_path / "trace.ndjson")
        with open(path, "w") as fh:
            for record in _synthetic_trace():
                fh.write(json.dumps(record) + "\n")
            fh.write('{"kind": "event", "na')  # torn mid-write
        records, _ = live.read_records(path)
        screen = render_top(records)
        assert "run main:haswell" in screen

    def test_cli_top_one_shot(self, tmp_path, capsys):
        from repro.cli import main
        path = str(tmp_path / "trace.ndjson")
        with open(path, "w") as fh:
            for record in _synthetic_trace():
                fh.write(json.dumps(record) + "\n")
        assert main(["top", path]) == 0
        out = capsys.readouterr().out
        assert "phase: experiment.measure" in out


def _unknown_total_trace():
    """A streamed run over a lazy generator: run.start announces
    ``blocks: null`` because the total is unknown mid-stream."""
    t0 = 2000.0
    trace = [
        {"kind": "event", "name": "run.start",
         "label": "stream:haswell", "uarch": "haswell", "blocks": None,
         "jobs": 2, "shards": None, "window_size": 32, "ts": t0,
         "trace": "str111", "seq": 1},
    ]
    for i in range(2):
        trace.append(
            {"kind": "event", "name": "window",
             "label": "stream:haswell", "window": i, "start": 32 * i,
             "blocks": 32, "accepted": 32, "sampled": 32, "p50": 4.0,
             "p95": 9.0, "p99": 12.0, "mean": 5.0, "jitter": 1.0,
             "sim_rate": 180.0, "ts": t0 + 2 * (i + 1),
             "trace": "str111", "seq": 2 + i})
    return trace


class TestRenderTopUnknownTotal:
    def test_no_fictional_eta_mid_stream(self):
        screen = render_top(_unknown_total_trace())
        assert "run stream:haswell: 64 blocks so far [streaming]" \
            in screen
        assert "2 windows" in screen
        assert "eta" not in screen
        # The observed rate replaces the ETA: 64 blocks over 4s.
        assert "16.0 blk/s" in screen

    def test_done_stream_drops_rate(self):
        records = _unknown_total_trace() + [
            {"kind": "event", "name": "run.end",
             "label": "stream:haswell", "ts": 2004.5, "seq": 9}]
        screen = render_top(records)
        assert "64 blocks so far [done]" in screen
        assert "blk/s" not in screen
        assert "eta" not in screen

    def test_known_total_still_gets_eta(self):
        screen = render_top(_synthetic_trace())
        assert "eta" in screen
        assert "blocks so far" not in screen


class TestHeartbeatFinalSnapshot:
    def test_stop_emits_a_final_beat(self):
        sink = telemetry.MemorySink()
        telemetry.enable(sink)
        with Heartbeat(interval=600.0):
            telemetry.count("profiler.blocks_total", 5)
        beats = [r for r in sink.records
                 if r.get("name") == "heartbeat"]
        # The interval never elapsed: the only beat is the final one,
        # and it reflects terminal state, not a timer tick.
        assert len(beats) == 1
        assert beats[0]["final"] is True
        assert beats[0]["blocks_total"] == 5

    def test_final_beat_fires_on_exception_unwind(self):
        sink = telemetry.MemorySink()
        telemetry.enable(sink)
        try:
            with Heartbeat(interval=600.0):
                raise RuntimeError("run blew up")
        except RuntimeError:
            pass
        finals = [r for r in sink.records
                  if r.get("name") == "heartbeat" and r.get("final")]
        assert len(finals) == 1

    def test_periodic_beats_are_not_final(self):
        sink = telemetry.MemorySink()
        telemetry.enable(sink)
        with Heartbeat(interval=0.05):
            time.sleep(0.2)
        beats = [r for r in sink.records
                 if r.get("name") == "heartbeat"]
        assert len(beats) >= 2
        assert all(b["final"] is False for b in beats[:-1])
        assert beats[-1]["final"] is True

    def test_stop_is_idempotent(self):
        telemetry.enable(sink := telemetry.MemorySink())
        hb = Heartbeat(interval=600.0).start()
        hb.stop()
        hb.stop()  # second stop: no thread, no second final beat
        finals = [r for r in sink.records
                  if r.get("name") == "heartbeat" and r.get("final")]
        assert len(finals) == 1


class TestTraceFollower:
    def _write(self, path, text):
        with open(path, "w") as fh:
            fh.write(text)

    def test_plain_tailing(self, tmp_path):
        path = str(tmp_path / "t.ndjson")
        self._write(path, '{"a": 1}\n')
        follower = live.TraceFollower(path)
        records, restarted = follower.poll()
        assert [r["a"] for r in records] == [1] and not restarted
        with open(path, "a") as fh:
            fh.write('{"a": 2}\n')
        records, restarted = follower.poll()
        assert [r["a"] for r in records] == [2] and not restarted
        assert follower.restarts == 0

    def test_rotation_is_detected_by_inode(self, tmp_path):
        path = str(tmp_path / "t.ndjson")
        self._write(path, '{"a": 1}\n{"a": 2}\n')
        follower = live.TraceFollower(path)
        follower.poll()
        # Rotate: move aside, recreate at the same path (new inode).
        os.rename(path, path + ".1")
        self._write(path, '{"b": 10}\n')
        records, restarted = follower.poll()
        assert restarted
        assert [r["b"] for r in records] == [10]  # from byte 0
        assert follower.restarts == 1

    def test_truncation_in_place_is_detected_by_size(self, tmp_path):
        path = str(tmp_path / "t.ndjson")
        self._write(path, '{"a": 1}\n{"a": 2}\n{"a": 3}\n')
        follower = live.TraceFollower(path)
        records, _ = follower.poll()
        assert len(records) == 3
        self._write(path, '{"b": 1}\n')  # same inode, shrunk
        records, restarted = follower.poll()
        assert restarted
        assert [r["b"] for r in records] == [1]

    def test_missing_file_holds_state_without_restart(self, tmp_path):
        path = str(tmp_path / "t.ndjson")
        self._write(path, '{"a": 1}\n')
        follower = live.TraceFollower(path)
        follower.poll()
        os.unlink(path)
        records, restarted = follower.poll()
        assert records == [] and not restarted
        # The writer recreates the file: caught by the inode check.
        self._write(path, '{"b": 1}\n')
        records, restarted = follower.poll()
        assert restarted
        assert [r["b"] for r in records] == [1]

    def test_same_size_rewrite_after_recreate(self, tmp_path):
        """A recreated file that happens to match the old size must
        still restart (inode changed, bytes are unrelated)."""
        path = str(tmp_path / "t.ndjson")
        self._write(path, '{"a": 1}\n')
        follower = live.TraceFollower(path)
        follower.poll()
        os.unlink(path)
        self._write(path, '{"a": 9}\n')  # identical length
        records, restarted = follower.poll()
        assert restarted
        assert [r["a"] for r in records] == [9]
