"""Metrics registry: counters, gauges, histogram percentiles."""

from repro.telemetry import Histogram, MetricsRegistry


class TestCounterGauge:
    def test_counter_increments(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(5)
        assert reg.counter("c").value == 6

    def test_gauge_holds_last_value(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(3.0)
        reg.gauge("g").set(1.5)
        assert reg.gauge("g").value == 1.5

    def test_same_name_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("x") is reg.histogram("x")


class TestHistogram:
    def test_exact_aggregates(self):
        h = Histogram("h")
        for v in (4.0, 1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == 10.0
        assert h.min == 1.0
        assert h.max == 4.0
        assert h.mean == 2.5

    def test_percentiles_on_uniform_data(self):
        h = Histogram("h")
        for v in range(1, 101):
            h.observe(float(v))
        assert abs(h.p50 - 50) <= 1
        assert abs(h.p95 - 95) <= 1
        assert abs(h.p99 - 99) <= 1
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0

    def test_empty_histogram(self):
        h = Histogram("h")
        assert h.mean is None
        assert h.p50 is None
        assert h.summary()["count"] == 0

    def test_reservoir_caps_memory_keeps_exact_counts(self):
        h = Histogram("h", max_samples=256)
        n = 10_000
        for v in range(n):
            h.observe(float(v))
        assert h.count == n
        assert h.min == 0.0
        assert h.max == float(n - 1)
        assert len(h._samples) == 256
        # Sampled median of a uniform ramp stays near the middle.
        assert 0.3 * n < h.p50 < 0.7 * n

    def test_percentiles_deterministic_per_name(self):
        def build():
            h = Histogram("same-name", max_samples=64)
            for v in range(1000):
                h.observe(float(v))
            return h.p95
        assert build() == build()


class TestSnapshot:
    def test_snapshot_is_plain_json(self):
        import json

        reg = MetricsRegistry()
        reg.counter("a.b").inc(2)
        reg.gauge("g").set(0.5)
        reg.histogram("h").observe(1.0)
        snap = reg.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["counters"] == {"a.b": 2}
        assert snap["gauges"] == {"g": 0.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert reg.snapshot()["counters"] == {}
