"""Run reports: funnel derivation, rendering, persistence."""

import json
import os

from repro.telemetry import (MetricsRegistry, build_run_report,
                             funnel_from_counters, render_summary,
                             write_run_report)


def _loaded_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("profiler.blocks_total").inc(100)
    reg.counter("profiler.blocks_accepted").inc(90)
    reg.counter("profiler.failure.segfault").inc(6)
    reg.counter("profiler.failure.unsupported_instruction").inc(4)
    reg.counter("cache.hits").inc(2)
    reg.counter("cache.misses").inc(1)
    reg.counter("cache.writes").inc(1)
    reg.histogram("span.experiment.measure").observe(120.0)
    reg.histogram("profiler.block_latency_ms").observe(15.0)
    return reg


class TestFunnel:
    def test_funnel_from_counters(self):
        funnel = funnel_from_counters({
            "profiler.blocks_total": 10,
            "profiler.blocks_accepted": 7,
            "profiler.failure.sigfpe": 2,
            "profiler.failure.unstable_timing": 1,
            "unrelated.counter": 99,
        })
        assert funnel["total"] == 10
        assert funnel["accepted"] == 7
        assert funnel["dropped"] == {"sigfpe": 2, "unstable_timing": 1}
        assert funnel["accepted"] + sum(funnel["dropped"].values()) \
            == funnel["total"]

    def test_zero_value_failures_omitted(self):
        funnel = funnel_from_counters({
            "profiler.blocks_total": 1,
            "profiler.blocks_accepted": 1,
            "profiler.failure.segfault": 0,
        })
        assert funnel["dropped"] == {}


class TestBuildReport:
    def test_sections_present(self):
        report = build_run_report(_loaded_registry(), name="unit",
                                  meta={"uarch": "haswell"})
        assert report["report"] == "unit"
        assert report["meta"]["uarch"] == "haswell"
        assert report["funnel"]["total"] == 100
        assert report["cache"] == {"hits": 2, "misses": 1, "writes": 1}
        stages = {s["stage"] for s in report["stages"]}
        assert stages == {"experiment.measure"}
        assert "profiler.block_latency_ms" in \
            report["metrics"]["histograms"]

    def test_explicit_funnel_overrides_counters(self):
        funnel = {"total": 5, "accepted": 5, "dropped": {}}
        report = build_run_report(_loaded_registry(), name="unit",
                                  funnel=funnel)
        assert report["funnel"] == funnel


class TestRendering:
    def test_summary_mentions_every_section(self):
        report = build_run_report(_loaded_registry(), name="unit",
                                  meta={"scale": 0.004})
        text = render_summary(report)
        assert "coverage funnel (100 blocks seen)" in text
        assert "accepted" in text
        assert "dropped: segfault" in text
        assert "90.0%" in text
        assert "stage timings" in text
        assert "experiment.measure" in text
        assert "2 hits, 1 misses, 1 writes" in text
        assert "scale=0.004" in text

    def test_summary_survives_empty_registry(self):
        report = build_run_report(MetricsRegistry(), name="empty")
        text = render_summary(report)
        assert "0 blocks seen" in text


class TestPersistence:
    def test_write_json_and_txt(self, tmp_path):
        report = build_run_report(_loaded_registry(), name="persisted")
        json_path, txt_path = write_run_report(report, str(tmp_path))
        assert os.path.exists(json_path)
        assert os.path.exists(txt_path)
        with open(json_path) as fh:
            loaded = json.load(fh)
        assert loaded["funnel"] == report["funnel"]
        with open(txt_path) as fh:
            assert "coverage funnel" in fh.read()
        # no stray temp files from the atomic write
        assert sorted(os.listdir(tmp_path)) == \
            ["persisted.json", "persisted.txt"]

    def test_default_dir_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_REPORT_DIR", str(tmp_path / "deep"))
        report = build_run_report(MetricsRegistry(), name="env")
        json_path, _ = write_run_report(report)
        assert json_path.startswith(str(tmp_path / "deep"))
