"""Peak-RSS gauge and the report's ``resources`` section."""

import json

from repro.corpus.dataset import build_application
from repro.parallel import profile_corpus_streamed
from repro.telemetry import (build_run_report, enable,
                             peak_rss_kb, registry,
                             render_summary, reset,
                             sample_peak_rss)
from repro.telemetry.resources import resources_section


class TestPeakRss:
    def test_positive_and_monotone(self):
        first = peak_rss_kb()
        assert first is not None and first > 0
        ballast = [bytes(1024) for _ in range(64)]
        assert peak_rss_kb() >= first
        del ballast

    def test_sample_records_gauge(self):
        reset()
        enable()
        peak = sample_peak_rss()
        snap = registry().snapshot()
        assert snap["gauges"]["resources.peak_rss_kb"] == peak


class TestResourcesSection:
    def test_always_carries_peak_rss(self):
        section = resources_section({})
        assert section["peak_rss_kb"] > 0
        assert "stream" not in section

    def test_stream_subsection_only_after_streamed_run(self):
        snap = {"counters": {"stream.submitted": 8, "stream.folded": 8},
                "gauges": {"stream.max_queue_depth": 3},
                "histograms": {"stream.queue_depth":
                               {"mean": 2.0, "p95": 3.0}}}
        section = resources_section(snap)
        assert section["stream"] == {
            "submitted": 8, "folded": 8, "max_queue_depth": 3,
            "queue_depth_mean": 2.0, "queue_depth_p95": 3.0}

    def test_streamed_run_populates_report(self):
        reset()
        enable()
        records = build_application("gzip", count=12, seed=1).records
        profile_corpus_streamed(iter(records), "haswell", seed=1,
                                jobs=1, shard_size=4)
        report = build_run_report(registry(), "stream-report-test")
        resources = report["resources"]
        assert resources["peak_rss_kb"] > 0
        assert resources["stream"]["folded"] == 3
        assert resources["stream"]["submitted"] == 3
        assert resources["stream"]["max_queue_depth"] >= 1
        summary = render_summary(report)
        assert "peak rss" in summary
        assert "streamed 3 shards" in summary
        json.dumps(report)  # report stays JSON-serialisable
        reset()
