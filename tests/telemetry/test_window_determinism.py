"""Windowed-series determinism: the live layer inherits the engine's
bit-for-bit contract.

Per-window percentile series are keyed to block index, so the series a
run produces must be byte-identical whether the corpus was profiled
serially, through a worker pool, with the simulation-core fast path
disabled — or under injected worker crashes (chaos is rescued
transparently).  These tests serialise the deposited window series to
JSON and compare bytes, exactly like ``tests/parallel``'s differential
suites do for profiles.
"""

import json

import pytest

from repro import telemetry
from repro.corpus.dataset import build_application
from repro.parallel import profile_corpus_sharded
from repro.simcore import config as simcore
from repro.telemetry import window

UARCHES = ("ivybridge", "haswell", "skylake")


def _window_series(corpus, uarch, seed, label, **kwargs):
    """One telemetry-enabled run -> its window series, as JSON bytes."""
    telemetry.reset()
    telemetry.enable(telemetry.MemorySink())
    try:
        profile_corpus_sharded(corpus, uarch, seed=seed,
                               run_label=label, **kwargs)
        series = window.runs()[label]
        records = list(telemetry.get_telemetry().sink.records)
        trace = telemetry.get_telemetry().trace_id
        return json.dumps(series), records, trace
    finally:
        telemetry.reset()


@pytest.mark.parametrize("uarch", UARCHES)
def test_serial_pool_and_fastpath_off_identical(uarch, monkeypatch):
    """Acceptance: serial vs ``--jobs 4`` vs fast-path-off produce
    byte-identical per-window series."""
    monkeypatch.setenv("REPRO_WINDOW", "8")
    corpus = build_application("openblas", count=33, seed=7)
    serial, _, _ = _window_series(corpus, uarch, 7, "win",
                                  jobs=1, shard_size=8)
    pooled, _, _ = _window_series(corpus, uarch, 7, "win",
                                  jobs=4, shard_size=4)
    with simcore.forced(False):
        slow, _, _ = _window_series(corpus, uarch, 7, "win",
                                    jobs=1, shard_size=8)
    assert serial == pooled
    assert serial == slow
    windows = json.loads(serial)
    assert [w["start"] for w in windows] == list(range(0, 33, 8))
    assert sum(w["blocks"] for w in windows) == 33


def test_window_series_stable_under_chaos(monkeypatch):
    """Worker crashes are rescued without moving a window boundary or
    perturbing a single windowed statistic."""
    monkeypatch.setenv("REPRO_WINDOW", "8")
    corpus = build_application("llvm", count=22, seed=3)
    clean, _, _ = _window_series(corpus, "haswell", 3, "win",
                                 jobs=2, shard_size=4)
    monkeypatch.setenv("REPRO_CHAOS", "11:worker_crash=0.5")
    chaotic, _, _ = _window_series(corpus, "haswell", 3, "win",
                                   jobs=2, shard_size=4)
    monkeypatch.delenv("REPRO_CHAOS")
    assert clean == chaotic


def test_worker_spans_stitched_into_parent_trace(monkeypatch):
    """Acceptance: pooled runs land worker spans in the parent trace,
    stamped with the run's trace ID."""
    monkeypatch.setenv("REPRO_WINDOW", "8")
    corpus = build_application("llvm", count=22, seed=3)
    _, records, trace = _window_series(corpus, "haswell", 3, "win",
                                       jobs=2, shard_size=4)
    assert trace is not None
    worker_spans = [r for r in records
                    if r.get("kind") == "span"
                    and r.get("name") == "worker.shard"]
    assert len(worker_spans) >= 2  # one per shard, several shards
    assert all(r.get("trace") == trace for r in worker_spans)
    assert all("worker" in r and "shard" in r for r in worker_spans)
    shards = [r["shard"] for r in worker_spans]
    assert shards == sorted(shards)  # merged in shard-index order

    events = {r.get("name") for r in records
              if r.get("kind") == "event"}
    assert {"run.start", "run.end", "window"} <= events
    # Worker summary events are folded into counters, not re-emitted.
    assert "worker.shard_summary" not in events


def test_windowed_series_survive_into_run_report(monkeypatch):
    monkeypatch.setenv("REPRO_WINDOW", "8")
    corpus = build_application("llvm", count=22, seed=3)
    telemetry.reset()
    telemetry.enable()
    try:
        profile_corpus_sharded(corpus, "haswell", seed=3, jobs=1,
                               run_label="reported")
        report = telemetry.build_run_report(telemetry.registry(),
                                            name="windows")
        series = report["windows"]["reported"]
        assert len(series) == 3  # 22 blocks / 8-block windows
        assert {"p50", "p95", "p99", "mean", "jitter", "sim_rate"} \
            <= set(series[0])
    finally:
        telemetry.reset()
