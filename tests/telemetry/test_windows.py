"""Unit tests for the sliding-window aggregation engine."""

import json
import random

import pytest

from repro import telemetry
from repro.telemetry import window
from repro.telemetry.window import WindowAggregator


def _feed(agg, pairs):
    for index, value in pairs:
        agg.observe(index, value)
    return agg.finish()


class TestBoundaries:
    def test_windows_keyed_to_block_index(self):
        agg = WindowAggregator("t", total=10, window_size=4)
        series = _feed(agg, [(i, float(i)) for i in range(10)])
        assert [w["window"] for w in series] == [0, 1, 2]
        assert [w["start"] for w in series] == [0, 4, 8]
        assert [w["blocks"] for w in series] == [4, 4, 2]

    def test_partial_last_window_finalises_on_completeness(self):
        seen = []
        agg = WindowAggregator("t", total=6, window_size=4,
                               on_window=lambda s: seen.append(s))
        for i in (4, 5):  # the 2-block tail window
            agg.observe(i, 1.0)
        assert [w["window"] for w in seen] == [1]
        assert seen[0]["blocks"] == 2

    def test_out_of_range_index_rejected(self):
        agg = WindowAggregator("t", total=4)
        with pytest.raises(IndexError):
            agg.observe(4, 1.0)
        with pytest.raises(IndexError):
            agg.observe(-1, 1.0)

    def test_env_var_window_size(self, monkeypatch):
        monkeypatch.setenv("REPRO_WINDOW", "7")
        assert window.default_window_size() == 7
        assert WindowAggregator("t", total=20).window_size == 7
        monkeypatch.delenv("REPRO_WINDOW")
        assert window.default_window_size() == \
            window.DEFAULT_WINDOW_SIZE


class TestOrderIndependence:
    def test_shuffled_feed_identical_summaries(self):
        rng = random.Random(5)
        pairs = [(i, rng.uniform(1.0, 40.0) if i % 7 else None)
                 for i in range(100)]
        ordered = _feed(
            WindowAggregator("t", total=100, window_size=16), pairs)
        for trial in range(3):
            shuffled = list(pairs)
            random.Random(trial).shuffle(shuffled)
            got = _feed(WindowAggregator("t", total=100,
                                         window_size=16), shuffled)
            assert json.dumps(got) == json.dumps(ordered)

    def test_shuffled_feed_with_small_reservoir(self):
        pairs = [(i, float(i % 13)) for i in range(64)]
        kwargs = dict(total=64, window_size=32, reservoir=8)
        ordered = _feed(WindowAggregator("t", **kwargs), pairs)
        shuffled = list(pairs)
        random.Random(9).shuffle(shuffled)
        got = _feed(WindowAggregator("t", **kwargs), shuffled)
        assert json.dumps(got) == json.dumps(ordered)
        assert all(w["sampled"] == 8 for w in got)

    def test_duplicate_observations_idempotent(self):
        agg = WindowAggregator("t", total=4, window_size=4)
        agg.observe(0, 5.0)
        agg.observe(0, 99.0)  # ignored: index already seen
        series = _feed(agg, [(1, 5.0), (2, 5.0), (3, 5.0)])
        assert series[0]["blocks"] == 4
        assert series[0]["p95"] == 5.0


class TestStatistics:
    def test_percentiles_mean_jitter(self):
        agg = WindowAggregator("t", total=4, window_size=4)
        series = _feed(agg, [(0, 2.0), (1, 4.0), (2, 6.0), (3, 8.0)])
        (w,) = series
        assert w["p50"] == 6.0  # nearest-rank on [2,4,6,8]
        assert w["p95"] == 8.0
        assert w["mean"] == 5.0
        assert w["jitter"] == pytest.approx(2.23606797749979)

    def test_sim_rate_is_accepted_per_kilocycle(self):
        agg = WindowAggregator("t", total=4, window_size=4)
        series = _feed(agg, [(0, 100.0), (1, 100.0), (2, 100.0),
                             (3, None)])
        (w,) = series
        assert w["accepted"] == 3
        assert w["sim_rate"] == pytest.approx(3 / 300.0 * 1000.0)

    def test_all_dropped_window_has_null_stats(self):
        agg = WindowAggregator("t", total=2, window_size=2)
        (w,) = _feed(agg, [(0, None), (1, None)])
        assert w["blocks"] == 2 and w["accepted"] == 0
        assert w["p50"] is None and w["sim_rate"] is None


class TestLedger:
    def test_deposit_and_reset(self):
        window.deposit_run("run-a", [{"window": 0}])
        assert "run-a" in window.runs()
        telemetry.reset()  # reset hook wipes the ledger
        assert window.runs() == {}
