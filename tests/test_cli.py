"""Command-line interface."""

import pytest

from repro.cli import main


def test_profile_block_file(tmp_path, capsys):
    path = tmp_path / "block.s"
    path.write_text("xor %edx, %edx\ndiv %ecx\ntest %edx, %edx\n")
    assert main(["profile", str(path)]) == 0
    out = capsys.readouterr().out
    assert "22.00 cycles/iteration" in out
    assert "clean runs" in out


def test_profile_failure_exit_code(tmp_path, capsys):
    path = tmp_path / "bad.s"
    path.write_text("cpuid\n")
    assert main(["profile", str(path)]) == 1
    assert "unprofileable" in capsys.readouterr().out


def test_predict_all_models(tmp_path, capsys):
    path = tmp_path / "zi.s"
    path.write_text("vxorps %xmm2, %xmm2, %xmm2\n")
    assert main(["predict", str(path)]) == 0
    out = capsys.readouterr().out
    assert "IACA" in out and "llvm-mca" in out and "OSACA" in out


def test_predict_selected_model(tmp_path, capsys):
    path = tmp_path / "zi.s"
    path.write_text("vxorps %xmm2, %xmm2, %xmm2\n")
    assert main(["predict", str(path), "--model", "iaca"]) == 0
    out = capsys.readouterr().out
    assert "IACA" in out and "OSACA" not in out


def test_timings(capsys):
    assert main(["timings", "add", "imul"]) == 0
    out = capsys.readouterr().out
    assert "1.00" in out and "3.00" in out


def test_ports(capsys):
    assert main(["ports", "imul %rbx, %rax"]) == 0
    assert "p1" in capsys.readouterr().out


def test_corpus_export(tmp_path, capsys):
    out_path = tmp_path / "suite.csv"
    assert main(["corpus", "--scale", "0.0003",
                 "--out", str(out_path)]) == 0
    assert out_path.exists()
    from repro.corpus.io import load_csv
    blocks = list(load_csv(str(out_path)))
    assert len(blocks) > 50


def test_corpus_json_with_measurements(tmp_path):
    out_path = tmp_path / "suite.json"
    assert main(["corpus", "--scale", "0.0002", "--measure",
                 "--out", str(out_path)]) == 0
    from repro.corpus.io import load_json
    corpus, measured = load_json(str(out_path))
    assert measured
    assert len(measured) <= len(corpus)


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["warp"])


def test_trace_flag_exports_ndjson(tmp_path, capsys):
    from repro import telemetry

    block = tmp_path / "block.s"
    block.write_text("add %rbx, %rax\n")
    trace = tmp_path / "trace.ndjson"
    try:
        assert main(["profile", str(block),
                     "--trace", str(trace)]) == 0
    finally:
        telemetry.reset()
    records = telemetry.read_ndjson(str(trace))
    assert any(r["kind"] == "span" for r in records)


def test_telemetry_subcommand_writes_report(tmp_path, capsys,
                                            monkeypatch):
    from repro import telemetry

    monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
    try:
        assert main(["telemetry", "--scale", "0.0001", "--seed", "5",
                     "--report-dir", str(tmp_path / "reports")]) == 0
    finally:
        telemetry.reset()
    out = capsys.readouterr().out
    assert "coverage funnel" in out
    assert "stage timings" in out
    assert (tmp_path / "reports"
            / "run_validation_haswell.json").exists()
