"""The env-var registry and the doc tables generated from it."""

import os

import pytest

from repro import envvars

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), ".."))

#: Docs that embed generated envvars tables.
DOCS = ("README.md", "docs/performance.md", "docs/robustness.md",
        "docs/observability.md")


class TestRegistry:
    def test_names_unique_and_prefixed(self):
        names = [v.name for v in envvars.REGISTRY]
        assert len(names) == len(set(names))
        assert all(n.startswith("REPRO_") for n in names)

    def test_groups_valid(self):
        assert {v.group for v in envvars.REGISTRY} \
            <= set(envvars.GROUP_ORDER)

    def test_by_group_filters(self):
        robustness = envvars.by_group("robustness")
        assert {v.name for v in robustness} == {
            "REPRO_CHAOS", "REPRO_STRICT", "REPRO_STEP_BUDGET",
            "REPRO_SHARD_TIMEOUT"}

    def test_table_renders_every_variable(self):
        table = envvars.markdown_table()
        for var in envvars.REGISTRY:
            assert f"`{var.name}`" in table


class TestDocsAgree:
    """Acceptance: a single registry, docs generated from it."""

    @pytest.mark.parametrize("doc", DOCS)
    def test_doc_blocks_match_registry(self, doc):
        path = os.path.join(REPO_ROOT, doc)
        with open(path) as fh:
            text = fh.read()
        blocks = envvars.doc_blocks(text)
        assert blocks, f"{doc} has no envvars marker block"
        for block in blocks:
            assert block["body"] == block["expected"], (
                f"{doc} env-var table is stale: regenerate with "
                f"'python -m repro.envvars --update {doc}'")

    def test_update_doc_is_idempotent_fixpoint(self):
        path = os.path.join(REPO_ROOT, "README.md")
        with open(path) as fh:
            text = fh.read()
        assert envvars.update_doc(text) == text

    def test_update_doc_rewrites_stale_block(self):
        stale = ("before\n<!-- envvars:begin group=performance -->\n"
                 "| old | junk |\n<!-- envvars:end -->\nafter")
        updated = envvars.update_doc(stale)
        assert "REPRO_NO_FASTPATH" in updated
        assert "| old | junk |" not in updated
        assert updated.startswith("before\n")
        assert updated.endswith("\nafter")


class TestCli:
    def test_envvars_command(self, capsys):
        from repro.cli import main
        assert main(["envvars", "--group", "observability"]) == 0
        out = capsys.readouterr().out
        assert "REPRO_WINDOW" in out
        assert "REPRO_SCALE" not in out

    def test_envvars_json(self, capsys):
        import json
        from repro.cli import main
        assert main(["envvars", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert any(v["name"] == "REPRO_CHAOS" for v in doc)
