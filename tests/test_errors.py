"""Exception hierarchy contract."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.AsmSyntaxError("x"),
        errors.UnknownOpcodeError("foo"),
        errors.UnsupportedInstructionError("cpuid"),
        errors.MemoryFault(0x1000),
        errors.InvalidAddressFault(0x10),
        errors.ArithmeticFault(),
        errors.ProfilingFailure("reason"),
        errors.ModelError("broken"),
    ])
    def test_everything_is_a_repro_error(self, exc):
        assert isinstance(exc, errors.ReproError)

    def test_catching_base_class_suffices(self):
        with pytest.raises(errors.ReproError):
            raise errors.MemoryFault(0x5000)


class TestMessages:
    def test_memory_fault_carries_address_and_kind(self):
        fault = errors.MemoryFault(0xABC000, is_write=True)
        assert fault.address == 0xABC000
        assert fault.is_write
        assert "write" in str(fault)
        assert "0xabc000" in str(fault)

    def test_read_fault_message(self):
        assert "read" in str(errors.MemoryFault(0x1000))

    def test_asm_syntax_error_includes_text(self):
        exc = errors.AsmSyntaxError("bad operand", "%zax")
        assert "%zax" in str(exc)
        assert exc.text == "%zax"

    def test_unknown_opcode_names_mnemonic(self):
        exc = errors.UnknownOpcodeError("vfmaddsubps")
        assert exc.mnemonic == "vfmaddsubps"
        assert "vfmaddsubps" in str(exc)

    def test_profiling_failure_reason(self):
        exc = errors.ProfilingFailure("icache", "too big")
        assert exc.reason == "icache"
        assert "too big" in str(exc)

    def test_arithmetic_fault_default_message(self):
        assert "divide" in str(errors.ArithmeticFault())
