"""End-to-end integration: the paper's headline claims on a small
corpus (the full-size versions live in benchmarks/)."""

import pytest

from repro.corpus import build_corpus
from repro.eval.pipeline import Experiment
from repro.profiler import (BasicBlockProfiler, config_for_stage,
                            TABLE1_STAGES, AblationStage)
from repro.uarch import Machine


@pytest.fixture(scope="module")
def experiment():
    return Experiment(scale=0.0012, seed=5)


class TestTable1Shape:
    @pytest.fixture(scope="class")
    def rates(self):
        corpus = build_corpus(scale=0.0008, seed=5)
        out = {}
        for stage in TABLE1_STAGES:
            profiler = BasicBlockProfiler(Machine("haswell", seed=5),
                                          config_for_stage(stage))
            ok = sum(1 for r in corpus
                     if profiler.profile(r.block).ok)
            out[stage] = ok / len(corpus)
        return out

    def test_rates_increase_with_each_technique(self, rates):
        assert rates[AblationStage.NONE] \
            < rates[AblationStage.SINGLE_PHYS_PAGE] \
            <= rates[AblationStage.SMALL_UNROLL]

    def test_rough_paper_magnitudes(self, rates):
        # Paper: 16.65% / 91.28% / 94.24%.
        assert 0.08 < rates[AblationStage.NONE] < 0.30
        assert rates[AblationStage.SINGLE_PHYS_PAGE] > 0.85
        assert rates[AblationStage.SMALL_UNROLL] > 0.90


class TestTable5Shape:
    def test_model_ordering_on_haswell(self, experiment):
        val = experiment.validation("haswell")
        iaca = val.overall_error("IACA")
        mca = val.overall_error("llvm-mca")
        ithemal = val.overall_error("Ithemal")
        osaca = val.overall_error("OSACA")
        # Paper's ordering: Ithemal < IACA ~ llvm-mca << OSACA.
        assert ithemal < iaca
        assert osaca > max(iaca, mca)
        assert iaca < 0.30 and mca < 0.35

    def test_errors_in_paper_ballpark(self, experiment):
        val = experiment.validation("haswell")
        assert 0.05 < val.overall_error("Ithemal") < 0.25
        assert 0.08 < val.overall_error("IACA") < 0.30
        assert 0.2 < val.overall_error("OSACA") < 0.6


class TestCategoryDifficulty:
    def test_stores_easier_than_load_mixes(self, experiment):
        """The paper: store-dominated blocks are easier to predict;
        load-mixing blocks are about twice as hard.  Tested on the
        blocks' instruction mixes directly (the LDA cluster labels
        wobble at this tiny corpus scale)."""
        from repro.eval.metrics import average_error
        from repro.models.residual import block_mix
        val = experiment.validation("haswell")
        blocks = {r.block_id: r.block for r in experiment.corpus}
        store_pairs, load_pairs, memdep_pairs = [], [], []
        for model in ("IACA", "llvm-mca"):
            for row in val.rows:
                predicted = row.predictions.get(model)
                if predicted is None:
                    continue
                block = blocks[row.block_id]
                mix = block_mix(block)
                has_rmw = any(i.loads_memory and i.stores_memory
                              for i in block)
                if has_rmw:
                    memdep_pairs.append((predicted, row.measured))
                elif mix["store"] > 0.25 and mix["load"] < 0.05 \
                        and mix["vector"] < 0.2:
                    store_pairs.append((predicted, row.measured))
                elif mix["load"] > 0.3 and mix["vector"] < 0.2:
                    load_pairs.append((predicted, row.measured))
        assert store_pairs and load_pairs and memdep_pairs
        store_err = average_error(store_pairs)
        load_err = average_error(load_pairs)
        memdep_err = average_error(memdep_pairs)
        assert store_err < load_err
        # Memory-carried dependencies are the hardest of all —
        # the paper's "weakness [in] model[ing] memory dependence".
        assert memdep_err > load_err


class TestProfiledFraction:
    def test_full_technique_matches_table1_final_row(self, experiment):
        val = experiment.validation("haswell")
        # Paper: 94.24% profiled with the full technique.
        assert val.profiled_fraction > 0.9
