"""Cross-cutting property-based tests on core invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.corpus import BlockSynthesizer, get_spec
from repro.profiler import BasicBlockProfiler
from repro.uarch import Machine
from repro.uarch.scheduler import DataflowScheduler
from repro.uarch.tables import get_uarch
from repro.uarch.uops import Decomposer


@st.composite
def corpus_blocks(draw, apps=("llvm", "openblas", "ffmpeg", "spanner")):
    app = draw(st.sampled_from(apps))
    seed = draw(st.integers(min_value=0, max_value=400))
    return BlockSynthesizer(get_spec(app), seed=seed).block()


def make_scheduler(uarch="haswell"):
    desc, table, div = get_uarch(uarch)
    return DataflowScheduler(desc, Decomposer(desc, table, div))


class TestSchedulerInvariants:
    @given(corpus_blocks(), st.integers(min_value=1, max_value=12))
    @settings(max_examples=40, deadline=None)
    def test_cycles_monotone_in_unroll(self, block, unroll):
        if not block.is_supported:
            return
        sched = make_scheduler()
        shorter = sched.schedule(block, unroll).cycles
        longer = sched.schedule(block, unroll + 1).cycles
        assert longer >= shorter

    @given(corpus_blocks())
    @settings(max_examples=30, deadline=None)
    def test_schedule_deterministic(self, block):
        if not block.is_supported:
            return
        sched = make_scheduler()
        assert sched.schedule(block, 8).cycles == \
            sched.schedule(block, 8).cycles

    @given(corpus_blocks())
    @settings(max_examples=30, deadline=None)
    def test_steady_slope_bounded_by_front_end(self, block):
        """Throughput can never beat the allocation width."""
        if not block.is_supported:
            return
        sched = make_scheduler()
        c16 = sched.schedule(block, 16).cycles
        c32 = sched.schedule(block, 32).cycles
        slope = (c32 - c16) / 16
        min_slots = len(block) / 4.0  # >= 1 slot per instruction
        assert slope >= min_slots * 0.999 or slope >= 0.25


class TestProfilerInvariants:
    @given(corpus_blocks())
    @settings(max_examples=25, deadline=None)
    def test_profile_never_raises_and_is_deterministic(self, block):
        profiler = BasicBlockProfiler(Machine("haswell", seed=11))
        first = profiler.profile(block)
        second = profiler.profile(block)
        assert first.ok == second.ok
        if first.ok:
            assert first.throughput == second.throughput
            assert first.throughput > 0
        else:
            assert first.failure == second.failure

    @given(corpus_blocks())
    @settings(max_examples=15, deadline=None)
    def test_throughput_agrees_across_machines_with_same_seedless_base(
            self, block):
        """Noise seeds differ but the accepted (clean) value is the
        noise-free simulation, so seeds must not change results."""
        a = BasicBlockProfiler(Machine("haswell", seed=1)).profile(block)
        b = BasicBlockProfiler(Machine("haswell", seed=2)).profile(block)
        if a.ok and b.ok:
            assert a.throughput == b.throughput


class TestModelInvariants:
    @given(corpus_blocks())
    @settings(max_examples=20, deadline=None)
    def test_models_never_raise(self, block):
        from repro.models import simulator_models
        for model in simulator_models():
            prediction = model.predict_safe(block, "haswell")
            if prediction.ok:
                assert prediction.throughput > 0

    @given(corpus_blocks())
    @settings(max_examples=20, deadline=None)
    def test_features_are_finite(self, block):
        import numpy as np
        from repro.models.features import block_features
        if not block.is_supported:
            return
        features = block_features(block)
        assert np.isfinite(features).all()
