"""Shared triage fixtures: every test gets an isolated store."""

import pytest

from repro.triage import stage


@pytest.fixture
def triage_cache(monkeypatch, tmp_path):
    """Point ``$REPRO_CACHE`` at a throwaway directory.

    The env var (not a programmatic override) so pool workers resolve
    the same isolated root.  The process-level store cache is cleared
    on both sides so no journal leaks between tests.
    """
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
    stage._STORES.clear()
    yield str(tmp_path)
    stage._STORES.clear()
