"""The triage switchboard: opt-in polarity and tolerance parsing."""

from repro.triage import config


class TestEnabled:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv(config.ENV_VAR, raising=False)
        config.set_enabled(None)
        assert not config.enabled()

    def test_env_opt_in_values(self, monkeypatch):
        config.set_enabled(None)
        for value in ("1", "true", "YES", " on "):
            monkeypatch.setenv(config.ENV_VAR, value)
            assert config.enabled(), value
        for value in ("0", "", "off", "no", "2"):
            monkeypatch.setenv(config.ENV_VAR, value)
            assert not config.enabled(), value

    def test_forced_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(config.ENV_VAR, "1")
        config.set_enabled(None)
        with config.forced(False):
            assert not config.enabled()
        assert config.enabled()
        monkeypatch.delenv(config.ENV_VAR)
        with config.forced(True):
            assert config.enabled()
        assert not config.enabled()

    def test_set_enabled_none_defers(self, monkeypatch):
        monkeypatch.delenv(config.ENV_VAR, raising=False)
        config.set_enabled(True)
        try:
            assert config.enabled()
        finally:
            config.set_enabled(None)
        assert not config.enabled()


class TestTolerance:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(config.TOL_VAR, raising=False)
        config.set_tolerance(None)
        assert config.tolerance() == config.DEFAULT_TOLERANCE

    def test_env_parse(self, monkeypatch):
        config.set_tolerance(None)
        monkeypatch.setenv(config.TOL_VAR, "0.05")
        assert config.tolerance() == 0.05

    def test_malformed_env_degrades_to_default(self, monkeypatch):
        """A bad tolerance costs nothing: routing falls back sane."""
        config.set_tolerance(None)
        for value in ("banana", "", "-0.3", "0", "nan"):
            monkeypatch.setenv(config.TOL_VAR, value)
            got = config.tolerance()
            assert got == config.DEFAULT_TOLERANCE, value

    def test_forced_tolerance(self, monkeypatch):
        monkeypatch.setenv(config.TOL_VAR, "0.5")
        config.set_tolerance(None)
        with config.forced_tolerance(0.01):
            assert config.tolerance() == 0.01
        assert config.tolerance() == 0.5
