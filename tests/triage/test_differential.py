"""Differential triage suite: routing is invisible in the bytes.

The learned triage stage promises the same contract every other
performance layer in this repo honours: with triage **off** the
pipeline is byte-identical to a build without the subsystem, and with
triage **on** the only observable differences are informational (the
``triage_revalidated`` info tally and ``triage.*`` telemetry) — every
measured throughput, every funnel count, every drop reason is
byte-equal, serially and through the worker pool, on every
microarchitecture, warm cache or cold.
"""

import glob
import json
import os

import pytest

from repro.corpus.dataset import build_application
from repro.eval.validation import profile_corpus_detailed
from repro.parallel import profile_corpus_sharded
from repro.resilience import chaos
from repro.resilience.journal import journal_line, parse_journal_line
from repro.triage import config

UARCHES = ("ivybridge", "haswell", "skylake")


def _payload(profile) -> str:
    """Canonical bytes of a profile: order-sensitive on purpose."""
    return json.dumps({"throughputs": profile.throughputs,
                       "funnel": profile.funnel})


def _conserved(profile) -> bool:
    return profile.funnel["accepted"] \
        + sum(profile.funnel["dropped"].values()) \
        == profile.funnel["total"]


@pytest.mark.parametrize("uarch", UARCHES)
def test_serial_byte_identical_cold_and_warm(triage_cache, uarch):
    corpus = build_application("llvm", count=18, seed=5)
    with config.forced(False):
        base = profile_corpus_detailed(corpus, uarch, seed=5)
    with config.forced(True):
        cold = profile_corpus_detailed(corpus, uarch, seed=5)
        warm = profile_corpus_detailed(corpus, uarch, seed=5)
    assert _payload(base) == _payload(cold) == _payload(warm)
    # Cold run: empty journal, no model -> nothing revalidated;
    # the run itself trains the surrogate for the warm one.
    assert "triage_revalidated" not in base.info
    assert "triage_revalidated" not in cold.info
    assert warm.info["triage_revalidated"] \
        == warm.funnel["accepted"]
    for profile in (base, cold, warm):
        assert _conserved(profile)
    # Apart from the marker, the info funnel is untouched.
    stripped = {k: v for k, v in warm.info.items()
                if k != "triage_revalidated"
                and k != "lanes_vectorized"}
    base_stripped = {k: v for k, v in base.info.items()
                     if k != "lanes_vectorized"}
    assert stripped == base_stripped


def test_pool_byte_identical_cold_and_warm(triage_cache, monkeypatch):
    """Workers journal, the parent trains after the merge; a second
    pooled run revalidates through the same store."""
    corpus = build_application("llvm", count=24, seed=6)
    with config.forced(False):
        base = profile_corpus_detailed(corpus, "haswell", seed=6)
    monkeypatch.setenv("REPRO_TRIAGE", "1")  # workers must inherit
    config.set_enabled(None)
    cold = profile_corpus_sharded(corpus, "haswell", seed=6,
                                  jobs=2, shard_size=8)
    warm = profile_corpus_sharded(corpus, "haswell", seed=6,
                                  jobs=2, shard_size=8)
    assert _payload(base) == _payload(cold) == _payload(warm)
    assert warm.info.get("triage_revalidated") \
        == warm.funnel["accepted"]
    assert _conserved(cold) and _conserved(warm)


@pytest.mark.parametrize("uarch", ("ivybridge", "haswell"))
def test_vector_corpus_identical(triage_cache, uarch):
    """Vector blocks (and Ivy Bridge's AVX2 drop path): drops are
    never journaled, never revalidated, and never move."""
    corpus = build_application("openblas", count=14, seed=9)
    with config.forced(False):
        base = profile_corpus_detailed(corpus, uarch, seed=9)
    with config.forced(True):
        profile_corpus_detailed(corpus, uarch, seed=9)
        warm = profile_corpus_detailed(corpus, uarch, seed=9)
    assert _payload(base) == _payload(warm)
    assert warm.info.get("triage_revalidated", 0) \
        == warm.funnel["accepted"]


def test_off_mode_ignores_a_warm_store(triage_cache):
    """A populated store must be completely inert with triage off —
    the differential guarantee is against the *flag*, not the disk."""
    corpus = build_application("llvm", count=12, seed=7)
    with config.forced(True):
        profile_corpus_detailed(corpus, "haswell", seed=7)
        profile_corpus_detailed(corpus, "haswell", seed=7)  # warm
    with config.forced(False):
        off = profile_corpus_detailed(corpus, "haswell", seed=7)
    assert "triage_revalidated" not in off.info
    with config.forced(True):
        warm = profile_corpus_detailed(corpus, "haswell", seed=7)
    assert _payload(off) == _payload(warm)


def test_corrupted_journal_row_falls_through(triage_cache):
    """A tampered cached value re-simulates instead of replaying.

    The surrogate learned the true measurement, so a drifted journal
    row disagrees, triage declines it, and the block's fresh
    simulation restores the exact baseline bytes.
    """
    from repro.triage import stage
    corpus = build_application("llvm", count=12, seed=8)
    with config.forced(False):
        base = profile_corpus_detailed(corpus, "haswell", seed=8)
    with config.forced(True):
        profile_corpus_detailed(corpus, "haswell", seed=8)  # journal+train
    (journal,) = glob.glob(
        os.path.join(triage_cache, "triage_*", "blocks.ndjson"))
    with open(journal) as fh:
        rows = [parse_journal_line(line) for line in fh.read().splitlines()]
    assert rows and all(r is not None for r in rows)
    rows[0]["throughput"] *= 10.0  # drift one cached value
    with open(journal, "w") as fh:
        fh.writelines(journal_line(r) + "\n" for r in rows)
    stage._STORES.clear()  # force a reload from the tampered file
    with config.forced(True):
        warm = profile_corpus_detailed(corpus, "haswell", seed=8)
    assert _payload(base) == _payload(warm)
    assert warm.info["triage_revalidated"] \
        == warm.funnel["accepted"] - 1


def test_chaos_poison_funnel_identical(triage_cache):
    """Poisoned blocks quarantine identically with triage on or off —
    revalidation must never shadow an injected fault."""
    corpus = build_application("llvm", count=16, seed=4)
    policy = chaos.ChaosPolicy.parse("42:block_poison=0.4")
    with config.forced(False), chaos.forced(policy):
        base = profile_corpus_detailed(corpus, "haswell", seed=4)
    assert base.funnel["dropped"], "poison rate chose no victims"
    with config.forced(True), chaos.forced(policy):
        cold = profile_corpus_detailed(corpus, "haswell", seed=4)
        warm = profile_corpus_detailed(corpus, "haswell", seed=4)
    assert _payload(base) == _payload(cold) == _payload(warm)
    assert _conserved(warm)
