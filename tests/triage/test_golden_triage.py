"""The frozen mixed novel/cached triage corpus, end to end.

``tests/data/golden_triage.json`` tags every block with the role the
triage stage must assign it on a warm run: ``cached`` blocks were
journaled by a prior run over exactly that sub-corpus, ``novel``
blocks were never seen.  The fixture pins the routing outcome — every
accepted cached block revalidates, every novel block falls through —
while the measured bytes stay equal to a triage-off profile of the
same mixed corpus.  Regenerate with regen_golden.py (see its header).
"""

import json
import os

import pytest

from repro.corpus.dataset import BlockRecord, Corpus
from repro.eval.validation import profile_corpus_detailed
from repro.isa.parser import parse_block
from repro.triage import config

DATA = os.path.join(os.path.dirname(__file__), "..", "data")


@pytest.fixture(scope="module")
def golden_triage():
    with open(os.path.join(DATA, "golden_triage.json")) as fh:
        doc = json.load(fh)
    records = [(BlockRecord(block=parse_block(b["text"]),
                            application=b["application"],
                            frequency=b["frequency"],
                            block_id=b["block_id"]), b["role"])
               for b in doc["blocks"]]
    return doc, records


def test_fixture_shape(golden_triage):
    doc, records = golden_triage
    roles = {role for _, role in records}
    assert roles == {"cached", "novel"}
    texts = [r.block.text() for r, _ in records]
    assert len(set(texts)) == len(texts)  # roles are unambiguous


def test_mixed_corpus_routes_by_role(triage_cache, golden_triage):
    doc, records = golden_triage
    seed = doc["seed"]
    mixed = Corpus([r for r, _ in records])
    cached_only = Corpus([r for r, role in records
                          if role == "cached"])

    with config.forced(False):
        base = profile_corpus_detailed(mixed, "haswell", seed=seed)
    with config.forced(True):
        # Prior run over the cached sub-corpus: journals + trains.
        warmup = profile_corpus_detailed(cached_only, "haswell",
                                         seed=seed)
        warm = profile_corpus_detailed(mixed, "haswell", seed=seed)

    # Bytes: triage-on over the mixed corpus == triage-off.
    assert json.dumps({"t": warm.throughputs, "f": warm.funnel}) \
        == json.dumps({"t": base.throughputs, "f": base.funnel})

    # Routing: exactly the accepted cached-role blocks revalidate.
    cached_ids = {r.block_id for r, role in records
                  if role == "cached"}
    expected = sum(1 for bid in base.throughputs if bid in cached_ids)
    assert expected == warmup.funnel["accepted"]
    assert warm.info["triage_revalidated"] == expected
    assert 0 < expected < warm.funnel["total"]  # both roles exercised
