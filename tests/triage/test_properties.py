"""Property: triage routing is a pure function of its inputs.

For a fixed published model, ``decide`` depends on exactly (block
content, cached value, tolerance) — never on evaluation order, the
process hash seed, or what else was routed before.  This is what makes
triage deterministic across serial runs, pool workers, and re-runs:
the same journal always routes the same blocks the same way.
"""

import os
import subprocess
import sys

import pytest

from repro.corpus.dataset import build_application
from repro.triage import stage, surrogate
from repro.triage.store import block_digest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships in the image
    HAVE_HYPOTHESIS = False

#: A fixed pool of real blocks and a model trained on half of them, so
#: the property exercises both journaled and never-seen content.
_BLOCKS = [r.block
           for r in build_application("llvm", count=20, seed=13)]
_MODEL = surrogate.fit_rows(
    [(block_digest(b.text()), b, 1.0 + i * 0.37)
     for i, b in enumerate(_BLOCKS[:10])])


@pytest.mark.skipif(not HAVE_HYPOTHESIS,
                    reason="hypothesis not installed")
class TestRoutingPurity:
    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=len(_BLOCKS) - 1),
                  st.floats(min_value=0.01, max_value=50.0,
                            allow_nan=False, allow_infinity=False),
                  st.floats(min_value=0.001, max_value=2.0,
                            allow_nan=False, allow_infinity=False)),
        min_size=1, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_order_blind_and_repeatable(self, draws):
        """Routing a batch forwards, backwards, or twice never changes
        any individual verdict."""
        forward = [stage.decide(_MODEL, _BLOCKS[i], cached, tol)
                   for i, cached, tol in draws]
        backward = [stage.decide(_MODEL, _BLOCKS[i], cached, tol)
                    for i, cached, tol in reversed(draws)]
        again = [stage.decide(_MODEL, _BLOCKS[i], cached, tol)
                 for i, cached, tol in draws]
        assert forward == again
        assert forward == list(reversed(backward))

    @given(st.integers(min_value=0, max_value=len(_BLOCKS) - 1),
           st.floats(min_value=0.01, max_value=50.0,
                     allow_nan=False, allow_infinity=False))
    @settings(max_examples=60, deadline=None)
    def test_widening_tolerance_is_monotone(self, i, cached):
        """A verdict accepted at some tolerance stays accepted at every
        wider one — the band is a band, not a hash bucket."""
        if stage.decide(_MODEL, _BLOCKS[i], cached, 0.1):
            assert stage.decide(_MODEL, _BLOCKS[i], cached, 0.5)
            assert stage.decide(_MODEL, _BLOCKS[i], cached, 2.0)


def test_routing_hashseed_stable():
    """The full route — featurize, predict, compare — is identical
    under different ``PYTHONHASHSEED`` values (pool workers and the
    parent are separate processes with separate hash seeds)."""
    script = (
        "from repro.corpus.dataset import build_application\n"
        "from repro.triage import stage, surrogate\n"
        "from repro.triage.store import block_digest\n"
        "blocks = [r.block for r in"
        " build_application('llvm', count=12, seed=13)]\n"
        "model = surrogate.fit_rows("
        "[(block_digest(b.text()), b, 1.0 + i * 0.37)"
        " for i, b in enumerate(blocks[:6])])\n"
        "verdicts = [stage.decide(model, b, 1.0 + j * 0.4, 0.25)"
        " for j, b in enumerate(blocks)]\n"
        "print(''.join('1' if v else '0' for v in verdicts))\n")
    outputs = set()
    for hashseed in ("0", "4242"):
        env = dict(os.environ, PYTHONHASHSEED=hashseed,
                   PYTHONPATH=os.pathsep.join(
                       filter(None, [os.environ.get("PYTHONPATH"),
                                     "src"])))
        out = subprocess.run(
            [sys.executable, "-c", script], env=env,
            capture_output=True, text=True, check=True,
            cwd=os.path.join(os.path.dirname(__file__), "..", ".."))
        outputs.add(out.stdout.strip())
    assert len(outputs) == 1 and outputs != {""}
