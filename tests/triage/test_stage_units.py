"""Stage units: routing predicate, row round-trip, memo seeding."""

import pytest

from repro.profiler.harness import BasicBlockProfiler
from repro.profiler.result import FailureReason, ProfileResult
from repro.resilience import chaos
from repro.triage import config, stage, surrogate
from repro.triage import store as storemod
from repro.uarch.machine import Machine

TEXT = "add %rax, %rbx\nimul %rcx, %rbx"


def _profiled(uarch="haswell", seed=0, text=TEXT):
    profiler = BasicBlockProfiler(Machine(uarch, seed=seed))
    return profiler, profiler.profile(text)


def _fingerprint(result):
    return (result.ok, result.throughput,
            tuple((m.unroll, m.cycles, m.clean_runs, m.total_runs,
                   m.l1d_read_misses, m.l1d_write_misses,
                   m.l1i_misses, m.misaligned_refs)
                  for m in result.measurements),
            result.pages_mapped, result.num_faults,
            result.subnormal_events)


def _journal_and_train(profiler, result, triage_cache):
    """Journal one measured block and publish a model fitted on it."""
    st = stage.store_for(profiler.machine.name, profiler.machine.seed,
                         profiler.config)
    digest = storemod.block_digest(result.block_text)
    st.append([stage._row_for_result(digest, result)])
    from repro.isa.parser import parse_block
    model = surrogate.fit_rows(
        [(digest, parse_block(result.block_text), result.throughput)])
    st.publish(model)
    return st


class TestDecide:
    def test_pure_and_deterministic(self):
        from repro.isa.parser import parse_block
        block = parse_block(TEXT)
        model = surrogate.fit_rows(
            [(storemod.block_digest(TEXT), block, 2.0)])
        first = stage.decide(model, block, 2.0, 0.25)
        assert first is True  # single-row fit predicts its own row
        assert all(stage.decide(model, block, 2.0, 0.25) is first
                   for _ in range(3))

    def test_no_model_routes_to_simulation(self):
        from repro.isa.parser import parse_block
        assert stage.decide(None, parse_block(TEXT), 2.0, 0.25) is False

    def test_invalid_cached_value_routes_to_simulation(self):
        from repro.isa.parser import parse_block
        block = parse_block(TEXT)
        model = surrogate.fit_rows(
            [(storemod.block_digest(TEXT), block, 2.0)])
        assert stage.decide(model, block, True, 0.25) is False
        assert stage.decide(model, block, "2.0", 0.25) is False

    def test_unfeaturizable_block_routes_to_simulation(self):
        model = surrogate.fit_rows(
            [(storemod.block_digest(TEXT), None, 2.0)])
        assert model is None  # and even with a model:
        from repro.isa.parser import parse_block
        real = surrogate.fit_rows(
            [(storemod.block_digest(TEXT), parse_block(TEXT), 2.0)])
        assert stage.decide(real, None, 2.0, 0.25) is False

    def test_tolerance_is_the_band(self):
        from repro.isa.parser import parse_block
        block = parse_block(TEXT)
        model = surrogate.fit_rows(
            [(storemod.block_digest(TEXT), block, 2.0)])
        # The model predicts ~2.0 for this block; a cached claim far
        # outside any tolerance band must disagree.
        assert stage.decide(model, block, 2.0, 1e-6) is True
        assert stage.decide(model, block, 20.0, 0.25) is False
        assert stage.decide(model, block, 20.0, 100.0) is True


class TestRowRoundTrip:
    def test_exact_reconstruction(self):
        _, result = _profiled()
        row = stage._row_for_result("aa", result)
        back = stage._result_from_row("haswell", TEXT, row)
        assert back is not None
        assert _fingerprint(back) == _fingerprint(result)
        assert back.extra.get("triage_revalidated") == 1.0
        marker_free = {k: v for k, v in back.extra.items()
                       if k != "triage_revalidated"}
        assert marker_free == dict(result.extra)

    def test_marker_never_journaled(self):
        _, result = _profiled()
        result.extra["triage_revalidated"] = 1.0
        row = stage._row_for_result("aa", result)
        assert "triage_revalidated" not in row["extra"]

    @pytest.mark.parametrize("mutate", [
        {"throughput": 0.0},
        {"throughput": -1.5},
        {"throughput": True},
        {"throughput": "2.0"},
        {"measurements": [[1, 2]]},       # wrong arity
        {"pages_mapped": "many"},
    ])
    def test_malformed_row_falls_through(self, mutate):
        _, result = _profiled()
        row = stage._row_for_result("aa", result)
        row.update(mutate)
        assert stage._result_from_row("haswell", TEXT, row) is None

    def test_missing_key_falls_through(self):
        _, result = _profiled()
        row = stage._row_for_result("aa", result)
        del row["measurements"]
        assert stage._result_from_row("haswell", TEXT, row) is None


class TestPrepare:
    def test_seeds_memo_with_exact_bytes(self, triage_cache):
        profiler, result = _profiled()
        _journal_and_train(profiler, result, triage_cache)
        fresh = BasicBlockProfiler(Machine("haswell", seed=0))
        with config.forced(True):
            stage.prepare_triage(fresh, [result_block(TEXT)])
        assert TEXT in fresh._memo
        seeded = fresh._memo[TEXT]
        assert _fingerprint(seeded) == _fingerprint(result)
        assert seeded.extra["triage_revalidated"] == 1.0

    def test_disabled_is_a_noop(self, triage_cache):
        profiler, result = _profiled()
        _journal_and_train(profiler, result, triage_cache)
        fresh = BasicBlockProfiler(Machine("haswell", seed=0))
        with config.forced(False):
            stage.prepare_triage(fresh, [result_block(TEXT)])
        assert fresh._memo == {}

    def test_poisoned_block_never_revalidated(self, triage_cache):
        """Chaos block_poison must reach the scalar path and
        quarantine exactly as with triage off."""
        profiler, result = _profiled()
        _journal_and_train(profiler, result, triage_cache)
        fresh = BasicBlockProfiler(Machine("haswell", seed=0))
        policy = chaos.ChaosPolicy.parse("42:block_poison=1.0")
        with config.forced(True), chaos.forced(policy):
            stage.prepare_triage(fresh, [result_block(TEXT)])
        assert fresh._memo == {}

    def test_tampered_cached_value_disagrees(self, triage_cache):
        """A journal row whose throughput drifted from what the
        surrogate learned falls through to fresh simulation."""
        profiler, result = _profiled()
        st = _journal_and_train(profiler, result, triage_cache)
        digest = storemod.block_digest(TEXT)
        tampered = dict(st.rows[digest])
        tampered["throughput"] = result.throughput * 10
        st.rows[digest] = tampered
        fresh = BasicBlockProfiler(Machine("haswell", seed=0))
        with config.forced(True):
            stage.prepare_triage(fresh, [result_block(TEXT)])
        assert fresh._memo == {}


class TestAbsorb:
    def test_journals_only_fresh_accepted_results(self, triage_cache):
        profiler, result = _profiled()
        revalidated = ProfileResult(
            "xor %rax, %rax", "haswell", throughput=1.0,
            extra={"triage_revalidated": 1.0})
        failed = ProfileResult(
            "ud2", "haswell", failure=FailureReason.UNSUPPORTED)
        with config.forced(True):
            stage.absorb_results(
                profiler, [], [result, revalidated, failed, result])
        st = stage.store_for("haswell", 0, profiler.config)
        digests = set(st.rows)
        assert digests == {storemod.block_digest(TEXT)}

    def test_disabled_journals_nothing(self, triage_cache):
        profiler, result = _profiled()
        with config.forced(False):
            stage.absorb_results(profiler, [], [result])
        assert stage.store_for("haswell", 0, profiler.config).rows == {}


def result_block(text):
    from repro.isa.parser import parse_block
    return parse_block(text)
