"""On-disk triage state: journal durability, artifact integrity."""

import json
import os
import zlib

from repro.profiler.harness import ProfilerConfig
from repro.triage import store as storemod
from repro.triage import surrogate
from repro.triage.store import TriageStore

from .test_surrogate import _rows


def _store(tmp_path):
    return TriageStore(str(tmp_path / "triage_haswell_0_deadbeef"))


def _row(digest, throughput=2.5):
    return {"digest": digest, "text": "add %rax, %rbx",
            "throughput": throughput, "measurements": [],
            "pages_mapped": 1, "num_faults": 0,
            "subnormal_events": 0, "extra": {}}


class TestDigests:
    def test_block_digest_stable(self):
        assert storemod.block_digest("add %rax, %rbx") \
            == f"{zlib.crc32(b'add %rax, %rbx'):08x}"

    def test_fingerprint_covers_switchboard(self):
        """Same profiler config, different switch state -> different
        store: stale informational extras can never cross modes."""
        cfg = ProfilerConfig()
        base = storemod.config_fingerprint(
            cfg, fastpath=True, blockplan=True, lanes=True,
            lane_width=16)
        assert base != storemod.config_fingerprint(
            cfg, fastpath=True, blockplan=True, lanes=False,
            lane_width=16)
        assert base != storemod.config_fingerprint(
            cfg, fastpath=True, blockplan=True, lanes=True,
            lane_width=8)
        assert base != storemod.config_fingerprint(
            ProfilerConfig(base_factor=100), fastpath=True,
            blockplan=True, lanes=True, lane_width=16)
        assert base == storemod.config_fingerprint(
            ProfilerConfig(), fastpath=True, blockplan=True,
            lanes=True, lane_width=16)

    def test_cache_root_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        assert storemod.cache_root() == str(tmp_path)
        assert storemod.store_dir("haswell", 7, "abcd") \
            == str(tmp_path / "triage_haswell_7_abcd")


class TestJournal:
    def test_append_reload_roundtrip(self, tmp_path):
        st = _store(tmp_path)
        assert st.append([_row("aa"), _row("bb", 3.0)]) == 2
        fresh = TriageStore(st.directory)
        assert set(fresh.rows) == {"aa", "bb"}
        assert fresh.rows["bb"]["throughput"] == 3.0
        assert fresh.torn_rows == 0

    def test_last_intact_occurrence_wins(self, tmp_path):
        st = _store(tmp_path)
        st.append([_row("aa", 1.0)])
        st.append([_row("aa", 9.0)])
        fresh = TriageStore(st.directory)
        assert fresh.rows["aa"]["throughput"] == 9.0

    def test_torn_line_dropped_not_fatal(self, tmp_path):
        """A crash- or interleave-torn line loses one row, nothing
        else — its block simply re-simulates next run."""
        st = _store(tmp_path)
        st.append([_row("aa"), _row("bb")])
        with open(st.blocks_path) as fh:
            lines = fh.read().splitlines()
        lines[0] = lines[0][: len(lines[0]) // 2]
        with open(st.blocks_path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        fresh = TriageStore(st.directory)
        assert set(fresh.rows) == {"bb"}
        assert fresh.torn_rows == 1

    def test_missing_journal_is_empty(self, tmp_path):
        st = _store(tmp_path)
        assert st.rows == {} and st.torn_rows == 0

    def test_append_nothing(self, tmp_path):
        st = _store(tmp_path)
        assert st.append([]) == 0
        assert not os.path.exists(st.blocks_path)


class TestWeights:
    def test_publish_and_load(self, tmp_path):
        st = _store(tmp_path)
        model = surrogate.fit_rows(_rows(count=6))
        name = st.publish(model)
        assert name is not None and name.startswith("weights_")
        fresh = TriageStore(st.directory)
        loaded = fresh.surrogate()
        assert loaded is not None
        assert loaded.census == model.census
        phi = surrogate.featurize(_rows(count=1)[0][1])
        assert loaded.predict(phi) == model.predict(phi)

    def test_republish_same_model_is_stable(self, tmp_path):
        st = _store(tmp_path)
        model = surrogate.fit_rows(_rows(count=6))
        assert st.publish(model) == st.publish(model)
        artifacts = [n for n in os.listdir(st.directory)
                     if n.startswith("weights_")]
        assert len(artifacts) == 1

    def test_absent_head_loads_none(self, tmp_path):
        assert _store(tmp_path).surrogate() is None

    def test_corrupt_artifact_rejected(self, tmp_path):
        st = _store(tmp_path)
        name = st.publish(surrogate.fit_rows(_rows(count=6)))
        path = os.path.join(st.directory, name)
        with open(path) as fh:
            wrapper = json.load(fh)
        wrapper["doc"]["intercept"] = 123.0  # payload no longer
        with open(path, "w") as fh:          # matches its CRC
            json.dump(wrapper, fh)
        assert TriageStore(st.directory).surrogate() is None

    def test_hostile_head_name_rejected(self, tmp_path):
        """HEAD is data read from disk — it must not become a path
        traversal primitive."""
        st = _store(tmp_path)
        os.makedirs(st.directory, exist_ok=True)
        for name in ("../outside.json", ".hidden", ""):
            with open(os.path.join(st.directory, "HEAD"), "w") as fh:
                fh.write(name + "\n")
            assert TriageStore(st.directory).surrogate() is None
