"""The surrogate model: deterministic, order-blind, interpolating."""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.corpus.dataset import build_application
from repro.models.features import FEATURE_DIM
from repro.triage import surrogate
from repro.triage.store import block_digest

DIM = FEATURE_DIM + surrogate.HASH_BUCKETS


def _rows(count=24, seed=3, app="llvm"):
    """(digest, block, pseudo-throughput) training rows."""
    rows = []
    for record in build_application(app, count=count, seed=seed):
        block = record.block
        text = block.text()
        # A deterministic pseudo-measurement: block-content dependent
        # but cheap (no simulator in the unit tests).
        target = 1.0 + (int(block_digest(text), 16) % 997) / 100.0
        rows.append((block_digest(text), block, target))
    return rows


class TestFeaturize:
    def test_shape_and_determinism(self):
        block = _rows(count=1)[0][1]
        a = surrogate.featurize(block)
        b = surrogate.featurize(block)
        assert a is not None and a.shape == (DIM,)
        assert np.array_equal(a, b)

    def test_failure_returns_none(self):
        assert surrogate.featurize(None) is None

    def test_hashseed_stable(self):
        """Feature hashing survives PYTHONHASHSEED changes.

        The whole triage store is content-addressed across processes
        (pool workers journal, the parent trains), so a feature vector
        computed under one hash seed must match any other.
        """
        script = (
            "import zlib, json\n"
            "from repro.corpus.dataset import build_application\n"
            "from repro.triage import surrogate\n"
            "record = next(iter(build_application('llvm', count=1,"
            " seed=3)))\n"
            "phi = surrogate.featurize(record.block)\n"
            "print(zlib.crc32(phi.tobytes()))\n")
        digests = set()
        for hashseed in ("0", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed,
                       PYTHONPATH=os.pathsep.join(
                           filter(None, [os.environ.get("PYTHONPATH"),
                                         "src"])))
            out = subprocess.run(
                [sys.executable, "-c", script], env=env,
                capture_output=True, text=True, check=True,
                cwd=os.path.join(os.path.dirname(__file__), "..", ".."))
            digests.add(out.stdout.strip())
        assert len(digests) == 1, digests


class TestCensus:
    def test_order_blind(self):
        pairs = [("aa", 1.5), ("bb", 2.0), ("cc", 3.25)]
        assert surrogate.census_of(pairs) \
            == surrogate.census_of(list(reversed(pairs)))

    def test_content_sensitive(self):
        assert surrogate.census_of([("aa", 1.5)]) \
            != surrogate.census_of([("aa", 1.50001)])


class TestFit:
    def test_order_blind_and_deterministic(self):
        rows = _rows()
        a = surrogate.fit_rows(rows)
        b = surrogate.fit_rows(list(reversed(rows)))
        assert a is not None and b is not None
        assert a.census == b.census
        assert np.array_equal(a.weights, b.weights)
        assert a.intercept == b.intercept

    def test_interpolation_regime(self):
        """Rows < features: every training block predicts back ~itself.

        This is the property the ≤5% warm-cache fall-through budget
        rests on; the default tolerance (0.25) must hold with a wide
        margin on the training set itself.
        """
        rows = _rows(count=40)
        assert len(rows) < DIM  # the regime the design assumes
        model = surrogate.fit_rows(rows)
        checked = 0
        for _, block, target in rows:
            phi = surrogate.featurize(block)
            if phi is None:  # unfeaturizable rows always fall through
                continue
            checked += 1
            predicted = model.predict(phi)
            assert abs(predicted - target) \
                <= 0.05 * max(abs(target), 1.0)
        assert checked >= len(rows) - 2

    def test_unusable_rows_dropped(self):
        rows = _rows(count=6)
        model = surrogate.fit_rows(rows + [("ffffffff", None, 2.0)])
        assert model is not None
        assert model.rows == len(rows)
        assert surrogate.fit_rows([("ffffffff", None, 2.0)]) is None


class TestSerialization:
    def test_roundtrip_predictions_exact(self):
        model = surrogate.fit_rows(_rows())
        doc = json.loads(json.dumps(model.to_doc()))
        back = surrogate.Surrogate.from_doc(doc)
        assert back is not None
        phi = surrogate.featurize(_rows(count=3)[2][1])
        assert back.predict(phi) == model.predict(phi)
        assert back.census == model.census

    @pytest.mark.parametrize("mutate", [
        {"version": 99},
        {"dense_dim": FEATURE_DIM + 1},
        {"buckets": surrogate.HASH_BUCKETS * 2},
        {"mean": [1.0, 2.0]},
        {"weights": None},
    ])
    def test_incompatible_doc_rejected(self, mutate):
        """A stale artifact from another build shape loads as None —
        triage silently falls back to full simulation."""
        doc = surrogate.fit_rows(_rows(count=4)).to_doc()
        doc.update(mutate)
        assert surrogate.Surrogate.from_doc(doc) is None

    def test_garbage_doc_rejected(self):
        assert surrogate.Surrogate.from_doc({}) is None
        assert surrogate.Surrogate.from_doc({"version": 1}) is None
