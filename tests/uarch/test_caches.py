"""Set-associative LRU cache model."""

from hypothesis import given, settings, strategies as st

from repro.uarch.caches import CacheModel
from repro.uarch.descriptor import CacheGeometry

SMALL = CacheGeometry(size=4 * 64 * 2, line_size=64, ways=2)  # 4 sets


class TestBasics:
    def test_cold_miss_then_hit(self):
        cache = CacheModel(SMALL)
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(63)  # same line

    def test_distinct_lines(self):
        cache = CacheModel(SMALL)
        cache.access(0)
        assert not cache.access(64)

    def test_lru_eviction_within_set(self):
        cache = CacheModel(SMALL)
        stride = SMALL.sets * SMALL.line_size  # same set each time
        cache.access(0)
        cache.access(stride)
        cache.access(2 * stride)  # evicts line 0 (2 ways)
        assert not cache.access(0)

    def test_lru_order_updated_on_hit(self):
        cache = CacheModel(SMALL)
        stride = SMALL.sets * SMALL.line_size
        cache.access(0)
        cache.access(stride)
        cache.access(0)              # refresh line 0
        cache.access(2 * stride)     # should evict `stride`, not 0
        assert cache.access(0)
        assert not cache.access(stride)

    def test_counters(self):
        cache = CacheModel(SMALL)
        cache.access(0)
        cache.access(0)
        assert (cache.misses, cache.hits) == (1, 1)
        cache.reset_counters()
        assert (cache.misses, cache.hits) == (0, 0)

    def test_reset_clears_contents(self):
        cache = CacheModel(SMALL)
        cache.access(0)
        cache.reset()
        assert not cache.access(0)

    def test_access_range_spanning_lines(self):
        cache = CacheModel(SMALL)
        misses = cache.access_range(60, 8)  # crosses a line boundary
        assert misses == 2
        assert cache.access_range(60, 8) == 0

    def test_working_set_within_capacity_always_hits(self):
        cache = CacheModel(CacheGeometry(32 * 1024, 64, 8))
        lines = [i * 64 for i in range(300)]  # ~19KB
        for addr in lines:
            cache.access(addr)
        cache.reset_counters()
        for addr in lines:
            assert cache.access(addr)

    def test_streaming_beyond_capacity_thrashes(self):
        cache = CacheModel(CacheGeometry(32 * 1024, 64, 8))
        lines = [i * 64 for i in range(600)]  # ~38KB > 32KB
        for addr in lines:
            cache.access(addr)
        cache.reset_counters()
        for addr in lines:
            cache.access(addr)
        assert cache.misses > 0


@given(st.lists(st.integers(min_value=0, max_value=1 << 20),
                min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_hits_plus_misses_equals_accesses(addresses):
    cache = CacheModel(SMALL)
    for addr in addresses:
        cache.access(addr)
    assert cache.hits + cache.misses == len(addresses)


@given(st.lists(st.integers(min_value=0, max_value=1 << 14),
                min_size=1, max_size=100))
@settings(max_examples=50, deadline=None)
def test_immediate_reaccess_always_hits(addresses):
    cache = CacheModel(SMALL)
    for addr in addresses:
        cache.access(addr)
        assert cache.access(addr)
