"""Performance-counter samples and the cleanliness predicate."""

from repro.uarch.counters import CounterSample


class TestCleanliness:
    def test_clean_sample(self):
        assert CounterSample(cycles=100).is_clean

    def test_d_read_miss_dirty(self):
        assert not CounterSample(cycles=1, l1d_read_misses=1).is_clean

    def test_d_write_miss_dirty(self):
        assert not CounterSample(cycles=1, l1d_write_misses=1).is_clean

    def test_i_miss_dirty(self):
        assert not CounterSample(cycles=1, l1i_misses=1).is_clean

    def test_context_switch_dirty(self):
        assert not CounterSample(cycles=1,
                                 context_switches=1).is_clean

    def test_misaligned_does_not_dirty_the_run(self):
        # Misalignment is a block-level filter, not a per-run one.
        assert CounterSample(cycles=1, misaligned_mem_refs=3).is_clean


class TestNoiseApplication:
    def test_with_noise_adds_cycles(self):
        base = CounterSample(cycles=100, l1i_misses=2)
        noisy = base.with_noise(extra_cycles=50)
        assert noisy.cycles == 150
        assert noisy.l1i_misses == 2
        assert base.cycles == 100  # immutable

    def test_with_context_switch(self):
        noisy = CounterSample(cycles=100).with_noise(
            extra_cycles=5000, context_switches=1)
        assert noisy.context_switches == 1
        assert not noisy.is_clean
