"""Golden steady-state throughputs across microarchitectures.

Pins down the ground-truth machine's behaviour on hand-analysed
kernels, so table or scheduler regressions surface immediately.  Each
expected value is derivable from the uarch tables by hand (noted
inline).
"""

import pytest

from repro.profiler import BasicBlockProfiler
from repro.uarch import Machine

#: block text -> {uarch: expected cycles/iteration}
GOLDEN = {
    # 1-cycle dependent chain on every core.
    "add %rbx, %rax": {
        "ivybridge": 1.0, "haswell": 1.0, "skylake": 1.0},
    # Dependent FP multiply chain: IVB/HSW lat 5, SKL lat 4.
    "mulss %xmm1, %xmm0": {
        "ivybridge": 5.0, "haswell": 5.0, "skylake": 4.0},
    # Dependent FP add chain: 3 on IVB/HSW, 4 on SKL (unified FMA).
    "addss %xmm1, %xmm0": {
        "ivybridge": 3.0, "haswell": 3.0, "skylake": 4.0},
    # Zero idiom: rename-limited, 4 per cycle everywhere.
    "vxorps %xmm2, %xmm2, %xmm2": {
        "ivybridge": 0.25, "haswell": 0.25, "skylake": 0.25},
    # 32-bit divide with zeroed rdx: the fast-path divider entry.
    "xor %edx, %edx\ndiv %ecx\ntest %edx, %edx": {
        "ivybridge": 26.0, "haswell": 22.0, "skylake": 21.0},
    # Two independent shifts: both fit in the two shift ports.
    "shl $1, %rax\nshl $1, %rbx": {
        "ivybridge": 1.0, "haswell": 1.0, "skylake": 1.0},
    # Four independent shifts: 2 ports -> 2 cycles.
    "shl $1, %rax\nshl $1, %rbx\nshl $1, %rcx\nshl $1, %rdx": {
        "ivybridge": 2.0, "haswell": 2.0, "skylake": 2.0},
    # Loop-invariant load feeding a register chain: ALU-only cycle.
    "or 0x40(%rbx), %r14": {
        "ivybridge": 1.0, "haswell": 1.0, "skylake": 1.0},
    # The paper's CRC loop (aligned variant): chain through the
    # indexed table load, 8 cycles on HSW (paper measures 8.25).
    ("add $1, %rdi\nmov %edx, %eax\nshr $8, %rdx\n"
     "xor -1(%rdi), %al\nmovzx %al, %eax\n"
     "xor 0x41108(, %rax, 8), %rdx\ncmp %rcx, %rdi"): {
        "haswell": 8.0},
    # Independent vector FMA pair: 2 uops on 2 FMA ports -> 1/iter...
    # but they chain on their destinations: latency-bound.
    "vfmadd231ps %ymm1, %ymm2, %ymm0": {
        "haswell": 5.0, "skylake": 4.0},
    # Store-forwarding round trip: store-data (1) + load dispatch +
    # forward latency (6/5/4) -> 8/7/6 per iteration; the uarch
    # ordering tracks each core's store_forward_latency.
    "mov %rax, 8(%rdi)\nmov 8(%rdi), %rax": {
        "ivybridge": 8.0, "haswell": 7.0, "skylake": 6.0},
}


@pytest.mark.parametrize("text", sorted(GOLDEN), ids=lambda t:
                         t.splitlines()[0][:24])
@pytest.mark.parametrize("uarch", ["ivybridge", "haswell", "skylake"])
def test_golden(text, uarch):
    expected = GOLDEN[text].get(uarch)
    if expected is None:
        pytest.skip("not pinned on this uarch")
    result = BasicBlockProfiler(Machine(uarch, seed=0)).profile(text)
    assert result.ok, result.failure
    assert result.throughput == pytest.approx(expected, abs=0.05), \
        (text, uarch)
