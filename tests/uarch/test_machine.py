"""The Machine facade: counters, caches, noise."""

import pytest

from repro.isa.parser import parse_block
from repro.profiler.environment import Environment, EnvironmentConfig
from repro.profiler.mapping import map_pages
from repro.runtime.executor import Executor
from repro.uarch.machine import Machine, NoiseParameters


def run_block(text, unroll=8, uarch="haswell", seed=0,
              single_page=True, ftz=True, reps=16, noise=None):
    env = Environment(EnvironmentConfig(single_physical_page=single_page,
                                        ftz=ftz))
    env.reset()
    block = parse_block(text)
    outcome = map_pages(env, block, unroll=unroll, max_faults=512)
    assert outcome.success, outcome.failure
    env.reinitialize()
    trace = Executor(env.state, env.memory).execute_block(block, unroll)
    machine = Machine(uarch, seed=seed, noise=noise)
    return machine.run(block, unroll, trace, env.memory, reps=reps)


QUIET = NoiseParameters(context_switch_rate=0.0, jitter_probability=0.0)


class TestCounters:
    def test_single_page_mapping_no_data_misses(self):
        rr = run_block("mov (%rdi), %rax\nadd $64, %rdi", unroll=16,
                       noise=QUIET)
        assert rr.samples[0].l1d_read_misses == 0

    def test_scattered_frames_cause_misses(self):
        text = "\n".join(
            f"mov {k * 8192}(%rdi), %rax" for k in range(12)) + \
            "\nadd $64, %rdi"
        hit = run_block(text, unroll=64, single_page=True, noise=QUIET)
        miss = run_block(text, unroll=64, single_page=False, noise=QUIET)
        assert hit.samples[0].l1d_read_misses == 0
        assert miss.samples[0].l1d_read_misses > 0

    def test_misaligned_counter(self):
        rr = run_block("movups 60(%rdi), %xmm0", unroll=4, noise=QUIET)
        assert rr.samples[0].misaligned_mem_refs == 4

    def test_icache_fits_no_misses(self):
        rr = run_block("add %rbx, %rax", unroll=100, noise=QUIET)
        assert rr.samples[0].l1i_misses == 0

    def test_icache_overflow_counted(self):
        # ~100 instructions x ~5B x 100 unroll = ~50KB > 32KB.
        text = "\n".join(f"add $1, %r{8 + k % 8}" for k in range(100))
        rr = run_block(text, unroll=100, noise=QUIET)
        assert rr.samples[0].l1i_misses > 0

    def test_trace_length_validated(self):
        env = Environment()
        env.reset()
        block = parse_block("add %rbx, %rax")
        map_pages(env, block, unroll=2)
        env.reinitialize()
        trace = Executor(env.state, env.memory).execute_block(block, 2)
        machine = Machine("haswell")
        with pytest.raises(ValueError):
            machine.run(block, 3, trace, env.memory)


class TestNoise:
    def test_quiet_machine_gives_identical_reps(self):
        rr = run_block("add %rbx, %rax", reps=16, noise=QUIET)
        assert len({s.cycles for s in rr.samples}) == 1
        assert all(s.is_clean for s in rr.samples)

    def test_jitter_perturbs_some_reps(self):
        noisy = NoiseParameters(context_switch_rate=0.0,
                                jitter_probability=0.9)
        rr = run_block("add %rbx, %rax", reps=16, noise=noisy)
        assert len({s.cycles for s in rr.samples}) > 1
        assert all(s.is_clean for s in rr.samples)  # jitter is clean

    def test_context_switches_flagged_unclean(self):
        stormy = NoiseParameters(context_switch_rate=0.5,
                                 jitter_probability=0.0)
        rr = run_block("add %rbx, %rax", reps=16, noise=stormy)
        dirty = [s for s in rr.samples if s.context_switches]
        assert dirty
        assert all(not s.is_clean for s in dirty)
        assert all(s.cycles > rr.base_cycles for s in dirty)

    def test_noise_deterministic_per_seed(self):
        a = run_block("add %rbx, %rax", seed=3)
        b = run_block("add %rbx, %rax", seed=3)
        c = run_block("add %rbx, %rax", seed=4)
        assert [s.cycles for s in a.samples] == \
            [s.cycles for s in b.samples]
        assert a.base_cycles == c.base_cycles  # base is noise-free


class TestUarchDifferences:
    def test_ivybridge_rejects_avx2(self):
        machine = Machine("ivybridge")
        assert not machine.supports(
            parse_block("vpaddd %ymm1, %ymm2, %ymm0"))
        assert not machine.supports(
            parse_block("vfmadd231ps %xmm1, %xmm2, %xmm0"))
        assert machine.supports(
            parse_block("vaddps %ymm1, %ymm2, %ymm0"))

    def test_skylake_faster_divider(self):
        hsw = run_block("xor %edx, %edx\ndiv %ecx", unroll=16,
                        uarch="haswell", noise=QUIET)
        skl = run_block("xor %edx, %edx\ndiv %ecx", unroll=16,
                        uarch="skylake", noise=QUIET)
        assert skl.base_cycles < hsw.base_cycles

    def test_fp_latency_differs_across_uarches(self):
        hsw = run_block("addss %xmm1, %xmm0", unroll=32,
                        uarch="haswell", noise=QUIET)
        skl = run_block("addss %xmm1, %xmm0", unroll=32,
                        uarch="skylake", noise=QUIET)
        # HSW fp add lat 3, SKL lat 4 on a dependent chain.
        assert skl.base_cycles > hsw.base_cycles
