"""Dataflow scheduler: dependencies, ports, OoO behaviour."""

import pytest

from repro.isa.parser import parse_block
from repro.uarch.scheduler import DataflowScheduler, InstrAnnotation
from repro.uarch.tables import get_uarch
from repro.uarch.uops import Decomposer


def scheduler(uarch="haswell", **policy):
    desc, table, div = get_uarch(uarch)
    return DataflowScheduler(desc, Decomposer(desc, table, div, **policy))


def slope(sched, block, u1=16, u2=32, annotations=None):
    def ann(u):
        if annotations is None:
            return None
        return annotations * u
    c1 = sched.schedule(block, u1, ann(u1)).cycles
    c2 = sched.schedule(block, u2, ann(u2)).cycles
    return (c2 - c1) / (u2 - u1)


class TestThroughputBounds:
    def test_dependent_chain_is_latency_bound(self):
        s = scheduler()
        block = parse_block("add %rbx, %rax")
        assert slope(s, block) == 1.0  # rax chains 1 cycle/iter

    def test_independent_ops_are_width_bound(self):
        s = scheduler()
        # Four independent single-cycle adds -> 4 ALU ports -> 1/cycle.
        block = parse_block("add $1, %rax\nadd $1, %rbx\n"
                            "add $1, %rcx\nadd $1, %rdx")
        assert slope(s, block) == pytest.approx(1.0, abs=0.1)

    def test_front_end_bound_nops(self):
        s = scheduler()
        block = parse_block("nop\nnop\nnop\nnop\nnop\nnop\nnop\nnop")
        assert slope(s, block) == pytest.approx(2.0, abs=0.1)

    def test_port_contention(self):
        s = scheduler()
        # Two shifts per iteration, only ports 0 and 6 -> 1 cycle/iter;
        # four shifts -> 2 cycles/iter.
        two = parse_block("shl $1, %rax\nshl $1, %rbx")
        four = parse_block("shl $1, %rax\nshl $1, %rbx\n"
                           "shl $1, %rcx\nshl $1, %rdx")
        assert slope(s, two) == pytest.approx(1.0, abs=0.1)
        assert slope(s, four) == pytest.approx(2.0, abs=0.1)

    def test_unpipelined_divider(self):
        s = scheduler()
        block = parse_block("xor %edx, %edx\ndiv %ecx\ntest %edx, %edx")
        ann = [InstrAnnotation(), InstrAnnotation(div_class=(32, True)),
               InstrAnnotation()]
        assert slope(s, block, annotations=ann) == 22.0

    def test_fp_chain(self):
        s = scheduler()
        block = parse_block("mulps %xmm1, %xmm0")  # xmm0 chain, lat 5
        assert slope(s, block) == 5.0


class TestZeroIdioms:
    def test_idiom_breaks_chain(self):
        s = scheduler()
        block = parse_block("vxorps %xmm2, %xmm2, %xmm2")
        assert slope(s, block, 32, 64) == pytest.approx(0.25, abs=0.01)

    def test_without_recognition_chain_remains(self):
        s = scheduler(recognize_zero_idioms=False)
        block = parse_block("vxorps %xmm2, %xmm2, %xmm2")
        assert slope(s, block, 32, 64) == pytest.approx(1.0, abs=0.05)

    def test_idiom_feeds_consumers_immediately(self):
        s = scheduler()
        # The idiom resets rax every iteration, so there is no
        # loop-carried chain at all: throughput is front-end bound
        # (2 fused uops / 4-wide), strictly faster than the chained
        # version without the idiom.
        broken = parse_block("xor %eax, %eax\nadd %rbx, %rax")
        chained = parse_block("add %rbx, %rax")
        assert slope(s, broken) == pytest.approx(0.5, abs=0.05)
        assert slope(s, chained) == pytest.approx(1.0, abs=0.05)


class TestOutOfOrder:
    def test_independent_load_hoisted_past_stalled_alu(self):
        """The hardware/IACA behaviour of the paper's case study 3."""
        s = scheduler()
        block = parse_block("""
            imul %rbx, %rax
            imul %rax, %rcx
            mov (%rdi), %rdx
        """)
        result = s.schedule(block, 4, keep_records=True)
        loads = [r for r in result.records if r.kind == "load"]
        muls = [r for r in result.records if r.kind == "compute"
                and r.mnemonic == "imul"]
        # The 4th iteration's load dispatches before the 4th
        # iteration's dependent multiply chain completes.
        assert loads[-1].dispatch < muls[-1].finish

    def test_store_forwarding_visible_with_annotations(self):
        s = scheduler()
        block = parse_block("mov %rax, (%rdi)\nmov (%rdi), %rax")
        ann = [
            InstrAnnotation(write_accesses=[(0x5000, 8)]),
            InstrAnnotation(read_accesses=[(0x5000, 8, 0)]),
        ]
        with_fwd = slope(s, block, annotations=ann)
        without = slope(s, block)
        assert with_fwd > without  # forwarding latency chains

    def test_partial_overlap_store_penalty(self):
        s = scheduler()
        block = parse_block("mov %al, (%rdi)\nmov (%rdi), %rax")
        ann = [
            InstrAnnotation(write_accesses=[(0x5000, 1)]),
            InstrAnnotation(read_accesses=[(0x5000, 8, 0)]),
        ]
        partial = slope(s, block, annotations=ann)
        full_ann = [
            InstrAnnotation(write_accesses=[(0x5000, 8)]),
            InstrAnnotation(read_accesses=[(0x5000, 8, 0)]),
        ]
        full = slope(s, parse_block(
            "mov %rax, (%rdi)\nmov (%rdi), %rax"), annotations=full_ann)
        assert partial > full  # store-to-load replay stall


class TestAnnotationsEffects:
    def test_subnormal_penalty(self):
        s = scheduler()
        block = parse_block("mulss %xmm1, %xmm0")
        clean = slope(s, block)
        assisted = slope(s, block,
                         annotations=[InstrAnnotation(subnormal=True)])
        assert assisted >= clean + 100

    def test_miss_penalty_extends_load(self):
        s = scheduler()
        block = parse_block("mov (%rdi), %rax\nadd %rax, %rbx\n"
                            "mov %rbx, %rdi")
        fast = slope(s, block, annotations=[
            InstrAnnotation(read_accesses=[(0x5000, 8, 0)]),
            InstrAnnotation(), InstrAnnotation()])
        slow = slope(s, block, annotations=[
            InstrAnnotation(read_accesses=[(0x5000, 8, 11)]),
            InstrAnnotation(), InstrAnnotation()])
        assert slow > fast

    def test_fetch_stalls_delay_allocation(self):
        s = scheduler()
        block = parse_block("nop\nnop\nnop\nnop")
        plain = s.schedule(block, 8).cycles
        stalled = s.schedule(block, 8, [
            InstrAnnotation(fetch_stall=3) if i % 4 == 0
            else InstrAnnotation() for i in range(32)]).cycles
        assert stalled > plain


class TestRecords:
    def test_records_cover_all_uops(self):
        s = scheduler()
        block = parse_block("add (%rdi), %rax")
        result = s.schedule(block, 2, keep_records=True)
        assert len(result.records) == 4  # (load + alu) x 2

    def test_port_pressure_accounting(self):
        s = scheduler()
        block = parse_block("shl $1, %rax")
        result = s.schedule(block, 8, keep_records=True)
        pressure = result.port_pressure()
        assert sum(pressure.values()) == 8
        assert set(pressure) <= {0, 6}

    def test_instruction_dispatches(self):
        s = scheduler()
        block = parse_block("add %rbx, %rax\nadd %rdx, %rcx")
        result = s.schedule(block, 1, keep_records=True)
        first = result.instruction_dispatches()
        assert set(first) == {0, 1}
