"""Per-uarch descriptor and timing-table invariants."""

import pytest

from repro.uarch.descriptor import CacheGeometry
from repro.uarch.tables import MICROARCHITECTURES, get_uarch
from repro.uarch.tables.common import TIMING_CLASSES, port_combo_name


@pytest.fixture(params=sorted(MICROARCHITECTURES))
def uarch(request):
    return get_uarch(request.param)


class TestDescriptors:
    def test_all_three_uarches_exist(self):
        assert set(MICROARCHITECTURES) == {"ivybridge", "haswell",
                                           "skylake"}

    def test_unknown_uarch_raises(self):
        with pytest.raises(KeyError):
            get_uarch("zen4")

    def test_lookup_case_insensitive(self):
        assert get_uarch("HaSwElL")[0].name == "haswell"

    def test_port_sets_are_subsets_of_ports(self, uarch):
        desc, _, _ = uarch
        for group in (desc.load_ports, desc.store_addr_ports,
                      desc.store_data_ports):
            assert set(group) <= set(desc.ports)

    def test_cache_geometry(self, uarch):
        desc, _, _ = uarch
        assert desc.l1d.size == 32 * 1024
        assert desc.l1d.line_size == 64
        assert desc.l1d.sets == 64

    def test_ivybridge_is_six_ports_no_avx2(self):
        desc, _, _ = get_uarch("ivybridge")
        assert len(desc.ports) == 6
        assert not desc.has_avx2 and not desc.has_fma
        assert desc.unlaminates_indexed

    def test_haswell_skylake_eight_ports(self):
        for name in ("haswell", "skylake"):
            desc, _, _ = get_uarch(name)
            assert len(desc.ports) == 8
            assert desc.has_avx2 and desc.has_fma


class TestTables:
    def test_every_timing_class_present(self, uarch):
        _, table, _ = uarch
        assert set(TIMING_CLASSES) <= set(table)

    def test_all_uop_ports_exist_on_the_machine(self, uarch):
        desc, table, div = uarch
        for cls, entry in table.items():
            for spec in entry.uops:
                assert set(spec.ports) <= set(desc.ports), cls
        for spec in div.values():
            assert set(spec.ports) <= set(desc.ports)

    def test_latencies_positive(self, uarch):
        _, table, div = uarch
        for cls, entry in table.items():
            for spec in entry.uops:
                assert spec.latency >= 1 and spec.occupancy >= 1, cls

    def test_divider_unpipelined(self, uarch):
        _, _, div = uarch
        for spec in div.values():
            assert spec.occupancy > 1

    def test_div_fast_path_is_faster(self, uarch):
        """The zeroed-rdx fast path of the paper's case study."""
        _, _, div = uarch
        assert div[(64, True)].latency < div[(64, False)].latency
        assert div[(32, True)].latency < div[(64, False)].latency

    def test_skylake_fp_is_4_cycles(self):
        _, table, _ = get_uarch("skylake")
        assert table["fp_add"].latency == 4
        assert table["fp_mul"].latency == 4

    def test_haswell_fp_add_mul_split(self):
        _, table, _ = get_uarch("haswell")
        assert table["fp_add"].latency == 3
        assert table["fp_mul"].latency == 5

    def test_skylake_single_uop_cmov(self):
        _, skl, _ = get_uarch("skylake")
        _, hsw, _ = get_uarch("haswell")
        assert len(skl["cmov"].uops) == 1
        assert len(hsw["cmov"].uops) == 2


class TestPortComboNames:
    def test_notation(self):
        assert port_combo_name((0, 1, 5, 6)) == "p0156"
        assert port_combo_name((6, 0)) == "p06"  # sorted
        assert port_combo_name(()) == "none"
