"""Micro-op decomposition and policy switches."""

import pytest

from repro.isa.parser import parse_instruction
from repro.uarch.tables import get_uarch
from repro.uarch.uops import Decomposer, timing_class


def make(uarch="haswell", **policy):
    desc, table, div = get_uarch(uarch)
    return Decomposer(desc, table, div, **policy)


class TestTimingClasses:
    @pytest.mark.parametrize("text,cls", [
        ("add %rbx, %rax", "int_alu"),
        ("mov $5, %rax", "mov_imm"),
        ("mov %rbx, %rax", "mov"),
        ("movzx %al, %eax", "movzx"),
        ("lea 8(%rax), %rbx", "lea_simple"),
        ("lea 8(%rax, %rcx, 2), %rbx", "lea_complex"),
        ("shl $3, %rax", "shift_imm"),
        ("shl %cl, %rax", "shift_cl"),
        ("imul %rbx, %rax", "int_mul"),
        ("imul %rbx", "int_mul_wide"),
        ("div %ecx", "int_div"),
        ("cmove %rbx, %rax", "cmov"),
        ("sete %al", "setcc"),
        ("xorps %xmm1, %xmm0", "vec_logic"),
        ("paddd %xmm1, %xmm0", "vec_int"),
        ("pshufd $1, %xmm1, %xmm0", "shuffle"),
        ("vinsertf128 $1, %xmm1, %ymm2, %ymm0", "lane_xfer"),
        ("addps %xmm1, %xmm0", "fp_add"),
        ("mulps %xmm1, %xmm0", "fp_mul"),
        ("vfmadd231ps %ymm1, %ymm2, %ymm0", "fma"),
        ("divps %xmm1, %xmm0", "fp_div_f32"),
        ("vdivpd %ymm1, %ymm2, %ymm0", "fp_div_f64_256"),
        ("sqrtsd %xmm1, %xmm0", "fp_sqrt_f64"),
        ("cvtsi2ss %eax, %xmm0", "fp_cvt"),
        ("ucomiss %xmm1, %xmm0", "fp_comi"),
    ])
    def test_classification(self, text, cls):
        assert timing_class(parse_instruction(text)) == cls


class TestDecomposition:
    def test_simple_alu_one_uop_one_slot(self):
        d = make().decompose(parse_instruction("add %rbx, %rax"))
        assert d.n_uops == 1
        assert d.fused_slots == 1

    def test_load_op_two_uops_one_fused_slot(self):
        d = make().decompose(parse_instruction("add (%rdi), %rax"))
        kinds = [u.kind for u in d.uops]
        assert kinds == ["load", "compute"]
        assert d.fused_slots == 1  # micro-fused

    def test_store_uops(self):
        d = make().decompose(parse_instruction("mov %rax, (%rdi)"))
        kinds = [u.kind for u in d.uops]
        assert kinds == ["store_addr", "store_data"]
        assert d.fused_slots == 1

    def test_rmw_full_decomposition(self):
        d = make().decompose(parse_instruction("addq $1, (%rdi)"))
        kinds = [u.kind for u in d.uops]
        assert kinds == ["load", "compute", "store_addr", "store_data"]
        assert d.fused_slots == 2

    def test_indexed_unlamination_on_ivybridge(self):
        ivb = make("ivybridge")
        hsw = make("haswell")
        instr = parse_instruction("add 8(%rdi, %rcx, 2), %rax")
        assert ivb.decompose(instr).fused_slots == 2
        assert hsw.decompose(instr).fused_slots == 1

    def test_div_uses_dynamic_class(self):
        d = make()
        instr = parse_instruction("div %ecx")
        fast = d.decompose(instr, (32, True))
        slow = d.decompose(instr, (64, False))
        assert fast.uops[0].latency < slow.uops[0].latency

    def test_load_latency_indexed_extra(self):
        d = make()
        simple = d.decompose(parse_instruction("mov 8(%rdi), %rax"))
        indexed = d.decompose(
            parse_instruction("mov 8(%rdi, %rcx, 4), %rax"))
        assert indexed.uops[0].latency == simple.uops[0].latency + 1

    def test_nop_has_no_uops_but_a_slot(self):
        d = make().decompose(parse_instruction("nop"))
        assert d.n_uops == 0 and d.fused_slots == 1


class TestPolicies:
    def test_zero_idiom_recognition_on(self):
        d = make(recognize_zero_idioms=True)
        result = d.decompose(parse_instruction("xor %eax, %eax"))
        assert result.is_zero_idiom and result.n_uops == 0

    def test_zero_idiom_recognition_off(self):
        d = make(recognize_zero_idioms=False)
        result = d.decompose(parse_instruction("xor %eax, %eax"))
        assert not result.is_zero_idiom and result.n_uops == 1

    def test_move_elimination_on(self):
        d = make(move_elimination=True)
        assert d.decompose(
            parse_instruction("mov %rbx, %rax")).is_eliminated_move

    def test_move_elimination_off(self):
        d = make(move_elimination=False)
        assert not d.decompose(
            parse_instruction("mov %rbx, %rax")).is_eliminated_move

    def test_8bit_moves_not_eliminated(self):
        d = make(move_elimination=True)
        assert not d.decompose(
            parse_instruction("mov %bl, %al")).is_eliminated_move

    def test_unsplit_narrow_load_op(self):
        """llvm-mca policy: 8-bit load-ALU forms fuse into one unit."""
        d = make(split_load_op=False)
        narrow = d.decompose(parse_instruction("xor -1(%rdi), %al"))
        assert [u.kind for u in narrow.uops] == ["load_op"]
        wide = d.decompose(parse_instruction("xor (%rdi), %rax"))
        assert [u.kind for u in wide.uops] == ["load", "compute"]

    def test_unsplit_latency_is_serialized(self):
        split = make(split_load_op=True)
        fused = make(split_load_op=False)
        instr = parse_instruction("xor -1(%rdi), %al")
        s = split.decompose(instr)
        f = fused.decompose(instr)
        assert f.uops[0].latency == \
            s.uops[0].latency + s.uops[1].latency

    def test_decomposition_cached(self):
        d = make()
        instr = parse_instruction("add %rbx, %rax")
        assert d.decompose(instr) is d.decompose(instr)
